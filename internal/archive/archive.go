// Package archive models the public dump archives operated by route
// collector projects (RouteViews, RIPE RIS): their directory layouts,
// file naming conventions, dump rotation periods, and HTTP
// distribution with directory-listing indexes.
//
// It is the substrate both below the Broker (which scrapes archives to
// index dump files) and below the route-collector simulator (which
// writes archives). The layouts follow the real projects:
//
//	routeviews:  <collector>/bgpdata/2015.08/RIBS/rib.20150801.0800.gz
//	             <collector>/bgpdata/2015.08/UPDATES/updates.20150801.0800.gz
//	ris:         <collector>/2015.08/bview.20150801.0800.gz
//	             <collector>/2015.08/updates.20150801.0800.gz
//
// with RouteViews dumping RIBs every 2 hours and updates every 15
// minutes, and RIPE RIS every 8 hours and 5 minutes respectively, as
// described in §2 of the paper.
package archive

import (
	"errors"
	"fmt"
	"path"
	"strings"
	"time"
)

// DumpType distinguishes RIB snapshots from update-message dumps.
type DumpType string

// The two dump types of §2.
const (
	DumpRIB     DumpType = "ribs"
	DumpUpdates DumpType = "updates"
)

// Valid reports whether t is a known dump type.
func (t DumpType) Valid() bool { return t == DumpRIB || t == DumpUpdates }

// Project describes a collector project's dump cadence and naming.
type Project struct {
	Name         string
	RIBPeriod    time.Duration // time between RIB dumps
	UpdatePeriod time.Duration // update dump rotation period
	ribPrefix    string        // file name prefix for RIB dumps
	updatePrefix string
	nested       bool // RouteViews-style bgpdata/…/RIBS nesting
}

// The two collector projects BGPStream ships support for.
var (
	RouteViews = Project{
		Name:         "routeviews",
		RIBPeriod:    2 * time.Hour,
		UpdatePeriod: 15 * time.Minute,
		ribPrefix:    "rib",
		updatePrefix: "updates",
		nested:       true,
	}
	RIPERIS = Project{
		Name:         "ris",
		RIBPeriod:    8 * time.Hour,
		UpdatePeriod: 5 * time.Minute,
		ribPrefix:    "bview",
		updatePrefix: "updates",
		nested:       false,
	}
)

// Projects maps project names to their conventions.
var Projects = map[string]Project{
	RouteViews.Name: RouteViews,
	RIPERIS.Name:    RIPERIS,
}

// ProjectByName returns the named project's conventions.
func ProjectByName(name string) (Project, error) {
	p, ok := Projects[name]
	if !ok {
		return Project{}, fmt.Errorf("archive: unknown project %q", name)
	}
	return p, nil
}

// Period returns the dump rotation period for the given type.
func (p Project) Period(t DumpType) time.Duration {
	if t == DumpRIB {
		return p.RIBPeriod
	}
	return p.UpdatePeriod
}

// FileName returns the dump file name for a dump beginning at ts.
func (p Project) FileName(t DumpType, ts time.Time) string {
	prefix := p.updatePrefix
	if t == DumpRIB {
		prefix = p.ribPrefix
	}
	return fmt.Sprintf("%s.%s.gz", prefix, ts.UTC().Format("20060102.1504"))
}

// FilePath returns the archive-relative path of a dump file, following
// the project's directory layout.
func (p Project) FilePath(collector string, t DumpType, ts time.Time) string {
	month := ts.UTC().Format("2006.01")
	name := p.FileName(t, ts)
	if p.nested {
		sub := "UPDATES"
		if t == DumpRIB {
			sub = "RIBS"
		}
		return path.Join(collector, "bgpdata", month, sub, name)
	}
	return path.Join(collector, month, name)
}

// DumpMeta is the meta-data the Broker serves about one dump file:
// enough to select, order, and fetch it. URL may be an http(s) URL or
// a local filesystem path.
type DumpMeta struct {
	Project   string
	Collector string
	Type      DumpType
	Time      time.Time     // nominal dump start time
	Duration  time.Duration // time covered by the dump file
	URL       string
}

// Interval returns the closed time interval (Unix seconds) covered by
// the dump, used for the §3.3.4 overlap partitioning.
func (m DumpMeta) Interval() (start, end int64) {
	start = m.Time.Unix()
	end = m.Time.Add(m.Duration).Unix()
	if end < start {
		end = start
	}
	return start, end
}

// ErrNotDump reports a path that does not name a dump file.
var ErrNotDump = errors.New("archive: not a dump file path")

// ParsePath parses an archive-relative dump path in either project's
// layout back into its meta-data (with URL left empty).
func ParsePath(project, relPath string) (DumpMeta, error) {
	p, err := ProjectByName(project)
	if err != nil {
		return DumpMeta{}, err
	}
	parts := strings.Split(path.Clean(relPath), "/")
	if len(parts) < 3 {
		return DumpMeta{}, ErrNotDump
	}
	collector := parts[0]
	file := parts[len(parts)-1]
	base, ok := strings.CutSuffix(file, ".gz")
	if !ok {
		return DumpMeta{}, ErrNotDump
	}
	segs := strings.SplitN(base, ".", 2)
	if len(segs) != 2 {
		return DumpMeta{}, ErrNotDump
	}
	var t DumpType
	switch segs[0] {
	case p.ribPrefix:
		t = DumpRIB
	case p.updatePrefix:
		t = DumpUpdates
	default:
		return DumpMeta{}, ErrNotDump
	}
	ts, err := time.ParseInLocation("20060102.1504", segs[1], time.UTC)
	if err != nil {
		return DumpMeta{}, fmt.Errorf("archive: bad timestamp in %q: %w", file, err)
	}
	dur := p.Period(t)
	if t == DumpRIB {
		// A RIB dump's records span its write-out, not the full RIB
		// period; model a short span as collectors do.
		dur = RIBSpan
	}
	return DumpMeta{
		Project:   project,
		Collector: collector,
		Type:      t,
		Time:      ts,
		Duration:  dur,
	}, nil
}

// RIBSpan is the modelled time a collector takes to write a full RIB
// dump; record timestamps within a RIB dump fall in this window
// ("timestamps often spanning several minutes", §6.2.1 E2).
const RIBSpan = 5 * time.Minute
