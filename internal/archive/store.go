package archive

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/mrt"
)

// Store is a local archive rooted at a directory, holding one or more
// projects' dump trees. It is written by the route-collector simulator
// and read by the directory data interface, the HTTP archive server,
// and the Broker scraper.
type Store struct {
	Root string
}

// NewStore opens (creating if needed) an archive rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: create root: %w", err)
	}
	return &Store{Root: dir}, nil
}

// WriteDump writes records as a gzip-compressed MRT dump file at the
// project's conventional path and returns its meta-data.
func (s *Store) WriteDump(project Project, collector string, t DumpType, ts time.Time, records []mrt.Record) (DumpMeta, error) {
	rel := filepath.Join(project.Name, filepath.FromSlash(project.FilePath(collector, t, ts)))
	full := filepath.Join(s.Root, rel)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return DumpMeta{}, fmt.Errorf("archive: mkdir: %w", err)
	}
	f, err := os.Create(full)
	if err != nil {
		return DumpMeta{}, fmt.Errorf("archive: create dump: %w", err)
	}
	w := mrt.NewGzipWriter(f)
	for _, rec := range records {
		if err := w.WriteRecord(rec); err != nil {
			f.Close()
			return DumpMeta{}, fmt.Errorf("archive: write record: %w", err)
		}
	}
	if err := w.Close(); err != nil {
		f.Close()
		return DumpMeta{}, fmt.Errorf("archive: close gzip: %w", err)
	}
	if err := f.Close(); err != nil {
		return DumpMeta{}, fmt.Errorf("archive: close dump: %w", err)
	}
	dur := project.Period(t)
	if t == DumpRIB {
		dur = RIBSpan
	}
	return DumpMeta{
		Project:   project.Name,
		Collector: collector,
		Type:      t,
		Time:      ts,
		Duration:  dur,
		URL:       full,
	}, nil
}

// Scan walks the store and returns meta-data for every dump file,
// sorted by (time, project, collector, type). URLs are absolute local
// paths.
func (s *Store) Scan() ([]DumpMeta, error) {
	var out []DumpMeta
	for name := range Projects {
		projRoot := filepath.Join(s.Root, name)
		if _, err := os.Stat(projRoot); os.IsNotExist(err) {
			continue
		}
		err := filepath.Walk(projRoot, func(p string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() {
				return err
			}
			rel, rerr := filepath.Rel(projRoot, p)
			if rerr != nil {
				return rerr
			}
			meta, perr := ParsePath(name, filepath.ToSlash(rel))
			if perr != nil {
				return nil // ignore foreign files
			}
			meta.URL = p
			out = append(out, meta)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("archive: scan: %w", err)
		}
	}
	SortMetas(out)
	return out, nil
}

// SortMetas orders metas by time, then project, collector and type,
// the canonical order used throughout the framework.
func SortMetas(metas []DumpMeta) {
	sort.Slice(metas, func(i, j int) bool {
		a, b := metas[i], metas[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Project != b.Project {
			return a.Project < b.Project
		}
		if a.Collector != b.Collector {
			return a.Collector < b.Collector
		}
		return a.Type < b.Type
	})
}

// Collectors lists the collectors present for a project in the store.
func (s *Store) Collectors(project string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.Root, project))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("archive: list collectors: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
