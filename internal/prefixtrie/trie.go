// Package prefixtrie provides a path-compressed binary radix trie
// (Patricia trie) keyed by IP prefixes, the core lookup structure
// behind BGPStream prefix filters, the pfxmonitor plugin's overlap
// matching, and longest-prefix-match geolocation.
//
// A Table stores one value per distinct prefix and supports exact
// lookup, longest-prefix match, enumeration of covered (more-specific)
// and covering (less-specific) entries, and overlap tests. IPv4 and
// IPv6 occupy independent tries inside the same Table; mixed-family
// queries simply route to the right trie.
package prefixtrie

import (
	"fmt"
	"net/netip"
)

// node is a trie node. Invariant: a child's prefix is always contained
// in (strictly longer than) its parent's prefix, and the child pointer
// slot (left/right) equals the first bit after the parent's length.
// Internal nodes created by splits carry no value.
type node[T any] struct {
	prefix   netip.Prefix
	value    T
	hasValue bool
	left     *node[T] // next bit 0
	right    *node[T] // next bit 1
}

// Table is a set of prefix→value bindings with radix lookups. The zero
// value is an empty table ready for use. Table is not safe for
// concurrent mutation; wrap it with a lock for shared use.
type Table[T any] struct {
	v4   *node[T]
	v6   *node[T]
	size int
}

// New returns an empty table. Equivalent to new(Table[T]).
func New[T any]() *Table[T] { return &Table[T]{} }

// Len returns the number of prefixes stored.
func (t *Table[T]) Len() int { return t.size }

func (t *Table[T]) root(is6 bool) **node[T] {
	if is6 {
		return &t.v6
	}
	return &t.v4
}

// bitAt returns bit i (0-indexed from the most significant bit) of the
// address.
func bitAt(a netip.Addr, i int) int {
	if a.Is4() {
		b := a.As4()
		return int(b[i/8]>>(7-i%8)) & 1
	}
	b := a.As16()
	return int(b[i/8]>>(7-i%8)) & 1
}

// commonBits returns the length of the longest common bit prefix of a
// and b, capped at max.
func commonBits(a, b netip.Addr, max int) int {
	var ab, bb []byte
	if a.Is4() {
		a4, b4 := a.As4(), b.As4()
		ab, bb = a4[:], b4[:]
		return commonBytes(ab, bb, max)
	}
	a16, b16 := a.As16(), b.As16()
	return commonBytes(a16[:], b16[:], max)
}

func commonBytes(a, b []byte, max int) int {
	n := 0
	for i := 0; i < len(a); i++ {
		x := a[i] ^ b[i]
		if x == 0 {
			n += 8
			if n >= max {
				return max
			}
			continue
		}
		for bit := 7; bit >= 0; bit-- {
			if x>>(uint(bit))&1 != 0 {
				n += 7 - bit
				break
			}
		}
		break
	}
	if n > max {
		return max
	}
	return n
}

func contains(outer, inner netip.Prefix) bool {
	return outer.Bits() <= inner.Bits() && outer.Contains(inner.Addr())
}

// Insert binds value to prefix, replacing any existing binding, and
// reports whether the prefix was newly added.
func (t *Table[T]) Insert(prefix netip.Prefix, value T) bool {
	if !prefix.IsValid() {
		panic(fmt.Sprintf("prefixtrie: invalid prefix %v", prefix))
	}
	prefix = prefix.Masked()
	slot := t.root(prefix.Addr().Is6())
	for {
		n := *slot
		if n == nil {
			*slot = &node[T]{prefix: prefix, value: value, hasValue: true}
			t.size++
			return true
		}
		if n.prefix == prefix {
			added := !n.hasValue
			n.value = value
			n.hasValue = true
			if added {
				t.size++
			}
			return added
		}
		cb := commonBits(n.prefix.Addr(), prefix.Addr(), min(n.prefix.Bits(), prefix.Bits()))
		if cb == n.prefix.Bits() {
			// prefix is inside n; descend.
			if bitAt(prefix.Addr(), n.prefix.Bits()) == 0 {
				slot = &n.left
			} else {
				slot = &n.right
			}
			continue
		}
		// Split: create a common ancestor at cb bits.
		ancestorPrefix, err := n.prefix.Addr().Prefix(cb)
		if err != nil {
			panic(fmt.Sprintf("prefixtrie: split failed: %v", err))
		}
		ancestor := &node[T]{prefix: ancestorPrefix}
		if cb == prefix.Bits() {
			// prefix IS the ancestor.
			ancestor.value = value
			ancestor.hasValue = true
			if bitAt(n.prefix.Addr(), cb) == 0 {
				ancestor.left = n
			} else {
				ancestor.right = n
			}
		} else {
			leaf := &node[T]{prefix: prefix, value: value, hasValue: true}
			if bitAt(prefix.Addr(), cb) == 0 {
				ancestor.left, ancestor.right = leaf, n
			} else {
				ancestor.left, ancestor.right = n, leaf
			}
		}
		*slot = ancestor
		t.size++
		return true
	}
}

// Remove deletes the binding for prefix and reports whether it
// existed. Structural nodes left childless or redundant are pruned.
func (t *Table[T]) Remove(prefix netip.Prefix) bool {
	prefix = prefix.Masked()
	slot := t.root(prefix.Addr().Is6())
	var path []**node[T]
	for {
		n := *slot
		if n == nil || !contains(n.prefix, prefix) {
			return false
		}
		path = append(path, slot)
		if n.prefix == prefix {
			if !n.hasValue {
				return false
			}
			var zero T
			n.value = zero
			n.hasValue = false
			t.size--
			t.prune(path)
			return true
		}
		if bitAt(prefix.Addr(), n.prefix.Bits()) == 0 {
			slot = &n.left
		} else {
			slot = &n.right
		}
	}
}

// prune removes valueless nodes with fewer than two children, walking
// back up the recorded path.
func (t *Table[T]) prune(path []**node[T]) {
	for i := len(path) - 1; i >= 0; i-- {
		n := *path[i]
		if n == nil || n.hasValue {
			return
		}
		switch {
		case n.left == nil && n.right == nil:
			*path[i] = nil
		case n.left == nil:
			*path[i] = n.right
		case n.right == nil:
			*path[i] = n.left
		default:
			return
		}
	}
}

// Get returns the value bound to exactly prefix.
func (t *Table[T]) Get(prefix netip.Prefix) (T, bool) {
	prefix = prefix.Masked()
	n := *t.root(prefix.Addr().Is6())
	for n != nil && contains(n.prefix, prefix) {
		if n.prefix == prefix {
			if n.hasValue {
				return n.value, true
			}
			break
		}
		if bitAt(prefix.Addr(), n.prefix.Bits()) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	var zero T
	return zero, false
}

// Lookup performs a longest-prefix match for addr, returning the most
// specific stored prefix containing it.
func (t *Table[T]) Lookup(addr netip.Addr) (netip.Prefix, T, bool) {
	n := *t.root(addr.Is6())
	var (
		best    *node[T]
		maxBits = addr.BitLen()
	)
	for n != nil && n.prefix.Contains(addr) {
		if n.hasValue {
			best = n
		}
		if n.prefix.Bits() >= maxBits {
			break
		}
		if bitAt(addr, n.prefix.Bits()) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		var zero T
		return netip.Prefix{}, zero, false
	}
	return best.prefix, best.value, true
}

// LookupPrefix performs a longest-prefix match for the network address
// of p among stored prefixes at least as short as p, i.e. the most
// specific stored prefix that covers all of p.
func (t *Table[T]) LookupPrefix(p netip.Prefix) (netip.Prefix, T, bool) {
	p = p.Masked()
	n := *t.root(p.Addr().Is6())
	var best *node[T]
	for n != nil && contains(n.prefix, p) {
		if n.hasValue {
			best = n
		}
		if n.prefix.Bits() >= p.Bits() {
			break
		}
		if bitAt(p.Addr(), n.prefix.Bits()) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		var zero T
		return netip.Prefix{}, zero, false
	}
	return best.prefix, best.value, true
}

// Covered calls fn for every stored prefix contained in p (including p
// itself), stopping early if fn returns false.
func (t *Table[T]) Covered(p netip.Prefix, fn func(netip.Prefix, T) bool) {
	p = p.Masked()
	n := *t.root(p.Addr().Is6())
	// Descend while the node is strictly broader than p.
	for n != nil && n.prefix.Bits() < p.Bits() {
		if !n.prefix.Contains(p.Addr()) {
			return
		}
		if bitAt(p.Addr(), n.prefix.Bits()) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil || !contains(p, n.prefix) {
		return
	}
	walk(n, fn)
}

func walk[T any](n *node[T], fn func(netip.Prefix, T) bool) bool {
	if n == nil {
		return true
	}
	if n.hasValue && !fn(n.prefix, n.value) {
		return false
	}
	if !walk(n.left, fn) {
		return false
	}
	return walk(n.right, fn)
}

// OverlapsAny reports whether any stored prefix overlaps p, i.e.
// contains p or is contained in it. This is the pfxmonitor matching
// predicate and the rislive fan-out pre-index probe; it performs no
// allocations, so it is safe to call per published elem.
func (t *Table[T]) OverlapsAny(p netip.Prefix) bool {
	if _, _, ok := t.LookupPrefix(p); ok {
		return true
	}
	return t.anyCovered(p)
}

// anyCovered reports whether any stored prefix is contained in p. It
// mirrors Covered's descent but tests bare subtree occupancy instead
// of invoking a callback, keeping the probe closure- and
// allocation-free.
func (t *Table[T]) anyCovered(p netip.Prefix) bool {
	p = p.Masked()
	n := *t.root(p.Addr().Is6())
	for n != nil && n.prefix.Bits() < p.Bits() {
		if !n.prefix.Contains(p.Addr()) {
			return false
		}
		if bitAt(p.Addr(), n.prefix.Bits()) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil || !contains(p, n.prefix) {
		return false
	}
	return subtreeHasValue(n)
}

func subtreeHasValue[T any](n *node[T]) bool {
	return n != nil && (n.hasValue || subtreeHasValue(n.left) || subtreeHasValue(n.right))
}

// All calls fn for every stored prefix in trie order (sorted for
// lookups within a family, IPv4 before IPv6), stopping early if fn
// returns false.
func (t *Table[T]) All(fn func(netip.Prefix, T) bool) {
	if !walk(t.v4, fn) {
		return
	}
	walk(t.v6, fn)
}

// Prefixes returns all stored prefixes.
func (t *Table[T]) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, t.size)
	t.All(func(p netip.Prefix, _ T) bool {
		out = append(out, p)
		return true
	})
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
