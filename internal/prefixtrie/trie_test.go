package prefixtrie

import (
	"math/rand"
	"net/netip"
	"sort"
	"testing"
	"testing/quick"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestInsertGet(t *testing.T) {
	tr := New[int]()
	if !tr.Insert(pfx("10.0.0.0/8"), 1) {
		t.Error("first insert should report new")
	}
	if tr.Insert(pfx("10.0.0.0/8"), 2) {
		t.Error("re-insert should report existing")
	}
	v, ok := tr.Get(pfx("10.0.0.0/8"))
	if !ok || v != 2 {
		t.Errorf("Get = %d %v", v, ok)
	}
	if _, ok := tr.Get(pfx("10.0.0.0/9")); ok {
		t.Error("phantom /9")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	tr := New[string]()
	tr.Insert(pfx("0.0.0.0/0"), "default")
	tr.Insert(pfx("10.0.0.0/8"), "ten")
	tr.Insert(pfx("10.1.0.0/16"), "ten-one")
	tr.Insert(pfx("10.1.2.0/24"), "ten-one-two")

	cases := []struct {
		addr string
		want string
	}{
		{"10.1.2.3", "ten-one-two"},
		{"10.1.99.1", "ten-one"},
		{"10.200.0.1", "ten"},
		{"192.0.2.1", "default"},
	}
	for _, c := range cases {
		_, got, ok := tr.Lookup(netip.MustParseAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q %v, want %q", c.addr, got, ok, c.want)
		}
	}
}

func TestLookupNoDefault(t *testing.T) {
	tr := New[string]()
	tr.Insert(pfx("10.0.0.0/8"), "ten")
	if _, _, ok := tr.Lookup(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("lookup outside any prefix must miss")
	}
}

func TestLookupPrefix(t *testing.T) {
	tr := New[string]()
	tr.Insert(pfx("10.0.0.0/8"), "ten")
	tr.Insert(pfx("10.1.0.0/16"), "ten-one")

	p, v, ok := tr.LookupPrefix(pfx("10.1.2.0/24"))
	if !ok || v != "ten-one" || p != pfx("10.1.0.0/16") {
		t.Errorf("LookupPrefix(/24) = %s %q %v", p, v, ok)
	}
	// Exact match counts as covering.
	_, v, ok = tr.LookupPrefix(pfx("10.1.0.0/16"))
	if !ok || v != "ten-one" {
		t.Errorf("exact LookupPrefix = %q %v", v, ok)
	}
	// A broader query than any entry gets no cover.
	if _, _, ok := tr.LookupPrefix(pfx("10.0.0.0/7")); ok {
		t.Error("/7 should not be covered by /8")
	}
}

func TestCovered(t *testing.T) {
	tr := New[int]()
	for i, s := range []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.2.0.0/16", "192.0.2.0/24"} {
		tr.Insert(pfx(s), i)
	}
	var got []string
	tr.Covered(pfx("10.1.0.0/16"), func(p netip.Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	sort.Strings(got)
	want := []string{"10.1.0.0/16", "10.1.2.0/24"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Covered = %v, want %v", got, want)
	}

	got = nil
	tr.Covered(pfx("10.0.0.0/8"), func(p netip.Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	if len(got) != 4 {
		t.Errorf("Covered(/8) = %v, want 4 entries", got)
	}
}

func TestCoveredEarlyStop(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("10.0.0.0/8"), 0)
	tr.Insert(pfx("10.1.0.0/16"), 1)
	n := 0
	tr.Covered(pfx("10.0.0.0/8"), func(netip.Prefix, int) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestOverlapsAny(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("10.1.0.0/16"), 1)

	for _, c := range []struct {
		q    string
		want bool
	}{
		{"10.1.2.0/24", true},  // covered by entry
		{"10.0.0.0/8", true},   // covers entry
		{"10.1.0.0/16", true},  // equal
		{"10.2.0.0/16", false}, // sibling
		{"192.0.2.0/24", false},
	} {
		if got := tr.OverlapsAny(pfx(c.q)); got != c.want {
			t.Errorf("OverlapsAny(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestRemove(t *testing.T) {
	tr := New[int]()
	ps := []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.128.0.0/9"}
	for i, s := range ps {
		tr.Insert(pfx(s), i)
	}
	if !tr.Remove(pfx("10.1.0.0/16")) {
		t.Fatal("remove existing failed")
	}
	if tr.Remove(pfx("10.1.0.0/16")) {
		t.Fatal("double remove succeeded")
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	// Remaining entries still reachable.
	if _, ok := tr.Get(pfx("10.1.2.0/24")); !ok {
		t.Error("/24 lost after removing /16")
	}
	_, v, ok := tr.Lookup(netip.MustParseAddr("10.1.99.1"))
	if !ok || v != 0 {
		t.Errorf("lookup after remove = %d %v, want the /8", v, ok)
	}
	// Remove everything; table must be empty and lookups miss.
	tr.Remove(pfx("10.0.0.0/8"))
	tr.Remove(pfx("10.1.2.0/24"))
	tr.Remove(pfx("10.128.0.0/9"))
	if tr.Len() != 0 {
		t.Errorf("Len after clear = %d", tr.Len())
	}
	if _, _, ok := tr.Lookup(netip.MustParseAddr("10.1.2.3")); ok {
		t.Error("lookup in empty table hit")
	}
}

func TestRemoveNonexistentSibling(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("10.1.0.0/16"), 1)
	if tr.Remove(pfx("10.2.0.0/16")) {
		t.Error("removed prefix that was never inserted")
	}
}

func TestIPv6Independent(t *testing.T) {
	tr := New[string]()
	tr.Insert(pfx("::/0"), "v6-default")
	tr.Insert(pfx("2001:db8::/32"), "doc")
	tr.Insert(pfx("10.0.0.0/8"), "v4")

	_, v, ok := tr.Lookup(netip.MustParseAddr("2001:db8::1"))
	if !ok || v != "doc" {
		t.Errorf("v6 lookup = %q %v", v, ok)
	}
	_, v, ok = tr.Lookup(netip.MustParseAddr("2001:4860::1"))
	if !ok || v != "v6-default" {
		t.Errorf("v6 default = %q %v", v, ok)
	}
	_, v, ok = tr.Lookup(netip.MustParseAddr("10.1.1.1"))
	if !ok || v != "v4" {
		t.Errorf("v4 lookup = %q %v", v, ok)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestSlash32And128(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("192.0.2.1/32"), 1)
	tr.Insert(pfx("2001:db8::1/128"), 2)
	_, v, ok := tr.Lookup(netip.MustParseAddr("192.0.2.1"))
	if !ok || v != 1 {
		t.Errorf("/32 lookup = %d %v", v, ok)
	}
	if _, _, ok := tr.Lookup(netip.MustParseAddr("192.0.2.2")); ok {
		t.Error("/32 must not match neighbour")
	}
	_, v, ok = tr.Lookup(netip.MustParseAddr("2001:db8::1"))
	if !ok || v != 2 {
		t.Errorf("/128 lookup = %d %v", v, ok)
	}
}

func TestAllEnumerates(t *testing.T) {
	tr := New[int]()
	in := []string{"10.0.0.0/8", "192.0.2.0/24", "2001:db8::/32"}
	for i, s := range in {
		tr.Insert(pfx(s), i)
	}
	got := tr.Prefixes()
	if len(got) != 3 {
		t.Fatalf("Prefixes() = %v", got)
	}
}

// reference is a brute-force map-based oracle.
type reference struct {
	entries map[netip.Prefix]int
}

func (r *reference) lookup(a netip.Addr) (netip.Prefix, int, bool) {
	best := netip.Prefix{}
	bv := 0
	found := false
	for p, v := range r.entries {
		if p.Addr().Is4() != a.Is4() {
			continue
		}
		if p.Contains(a) && (!found || p.Bits() > best.Bits()) {
			best, bv, found = p, v, true
		}
	}
	return best, bv, found
}

func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New[int]()
		ref := &reference{entries: map[netip.Prefix]int{}}
		// Cluster prefixes in 10.0.0.0/8 to force shared structure.
		for i := 0; i < 60; i++ {
			bits := 8 + r.Intn(25)
			addr := netip.AddrFrom4([4]byte{10, byte(r.Intn(4)), byte(r.Intn(4)), byte(r.Intn(256))})
			p, _ := addr.Prefix(bits)
			if r.Intn(5) == 0 {
				tr.Remove(p)
				delete(ref.entries, p)
			} else {
				tr.Insert(p, i)
				ref.entries[p] = i
			}
		}
		if tr.Len() != len(ref.entries) {
			return false
		}
		// Compare 40 random lookups against the oracle.
		for i := 0; i < 40; i++ {
			a := netip.AddrFrom4([4]byte{10, byte(r.Intn(4)), byte(r.Intn(4)), byte(r.Intn(256))})
			wp, wv, wok := ref.lookup(a)
			gp, gv, gok := tr.Lookup(a)
			if wok != gok || (wok && (wp != gp || wv != gv)) {
				return false
			}
		}
		// Exact gets agree for every entry.
		for p, v := range ref.entries {
			gv, ok := tr.Get(p)
			if !ok || gv != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoveredAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New[int]()
		ref := map[netip.Prefix]bool{}
		for i := 0; i < 40; i++ {
			bits := 8 + r.Intn(25)
			addr := netip.AddrFrom4([4]byte{10, byte(r.Intn(2)), byte(r.Intn(4)), byte(r.Intn(256))})
			p, _ := addr.Prefix(bits)
			tr.Insert(p, i)
			ref[p] = true
		}
		qbits := 8 + r.Intn(17)
		qaddr := netip.AddrFrom4([4]byte{10, byte(r.Intn(2)), 0, 0})
		q, _ := qaddr.Prefix(qbits)

		want := map[netip.Prefix]bool{}
		for p := range ref {
			if q.Bits() <= p.Bits() && q.Contains(p.Addr()) {
				want[p] = true
			}
		}
		got := map[netip.Prefix]bool{}
		tr.Covered(q, func(p netip.Prefix, _ int) bool {
			got[p] = true
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for p := range want {
			if !got[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	tr := New[int]()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		bits := 8 + r.Intn(17)
		addr := netip.AddrFrom4([4]byte{byte(r.Intn(223) + 1), byte(r.Intn(256)), byte(r.Intn(256)), 0})
		p, _ := addr.Prefix(bits)
		tr.Insert(p, i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{byte(r.Intn(223) + 1), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}
