package rtables

import (
	"context"
	"io"
	"net/netip"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/astopo"
	"github.com/bgpstream-go/bgpstream/internal/bgp"
	"github.com/bgpstream-go/bgpstream/internal/collector"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/corsaro"
	"github.com/bgpstream-go/bgpstream/internal/mrt"
)

var (
	peerIP  = netip.MustParseAddr("192.0.2.10")
	localIP = netip.MustParseAddr("192.0.2.254")
	peerAS  = uint32(64501)
)

func key() VPKey { return VPKey{Collector: "rrc00", Addr: peerIP, ASN: peerAS} }

func ribRecords(ts uint32, pos bool, prefixes ...string) []*core.Record {
	pit := &mrt.PeerIndexTable{
		CollectorBGPID: netip.MustParseAddr("198.51.100.1"),
		Peers:          []mrt.Peer{{BGPID: peerIP, IP: peerIP, AS: peerAS}},
	}
	recs := []*core.Record{}
	raw := mrt.NewPeerIndexRecord(ts, pit)
	recs = append(recs, &core.Record{
		Collector: "rrc00", DumpType: core.DumpRIB, Status: core.StatusValid,
		Position: core.PositionStart, MRT: raw,
	})
	for i, pstr := range prefixes {
		origin := uint8(bgp.OriginIGP)
		attrs := bgp.AppendAttributes(nil, &bgp.PathAttributes{
			Origin: &origin, ASPath: bgp.SequencePath(peerAS, 701, 3356), HasASPath: true,
			NextHop: netip.MustParseAddr("192.0.2.1"),
		}, 4)
		rib := &mrt.RIB{Sequence: uint32(i), Prefix: netip.MustParsePrefix(pstr),
			Entries: []mrt.RIBEntry{{PeerIndex: 0, OriginatedTime: ts, Attrs: attrs}}}
		rr := mrt.NewRIBRecord(ts, rib)
		rec := &core.Record{Collector: "rrc00", DumpType: core.DumpRIB, Status: core.StatusValid, MRT: rr}
		recs = append(recs, rec)
	}
	if pos {
		recs[len(recs)-1].Position |= core.PositionEnd
	}
	// Decorate records with the peer table via a pass through Elems:
	// core wires peers internally when reading files; tests construct
	// records by hand, so rebuild them through an in-memory roundtrip.
	return wirePeers(recs, pit)
}

// wirePeers mimics the dump reader's peer-index tracking for
// hand-built records.
func wirePeers(recs []*core.Record, pit *mrt.PeerIndexTable) []*core.Record {
	for _, r := range recs {
		if r.MRT.Header.Type == mrt.TypeTableDumpV2 && r.MRT.Header.Subtype != mrt.SubtypePeerIndexTable {
			r.SetPeerIndex(pit)
		}
	}
	return recs
}

func announceRec(ts uint32, prefix string, path ...uint32) *core.Record {
	origin := uint8(bgp.OriginIGP)
	u := &bgp.Update{
		Attrs: bgp.PathAttributes{Origin: &origin, ASPath: bgp.SequencePath(path...), HasASPath: true,
			NextHop: netip.MustParseAddr("192.0.2.1")},
		NLRI: []netip.Prefix{netip.MustParsePrefix(prefix)},
	}
	raw := mrt.NewUpdateRecord(ts, peerAS, 65000, peerIP, localIP, u)
	return &core.Record{Collector: "rrc00", DumpType: core.DumpUpdates, Status: core.StatusValid, MRT: raw}
}

func withdrawRec(ts uint32, prefix string) *core.Record {
	u := &bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix(prefix)}}
	raw := mrt.NewUpdateRecord(ts, peerAS, 65000, peerIP, localIP, u)
	return &core.Record{Collector: "rrc00", DumpType: core.DumpUpdates, Status: core.StatusValid, MRT: raw}
}

func stateRec(ts uint32, oldS, newS bgp.FSMState) *core.Record {
	raw := mrt.NewStateChangeRecord(ts, peerAS, 65000, peerIP, localIP, oldS, newS)
	return &core.Record{Collector: "rrc00", DumpType: core.DumpUpdates, Status: core.StatusValid, MRT: raw}
}

func feed(t *testing.T, rt *RT, recs ...*core.Record) {
	t.Helper()
	r := &corsaro.Runner{Source: &sliceSource{recs: recs}, Interval: 5 * time.Minute, Plugins: []corsaro.Plugin{rt}}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

type sliceSource struct {
	recs []*core.Record
	pos  int
}

func (s *sliceSource) Next() (*core.Record, error) {
	if s.pos >= len(s.recs) {
		return nil, io.EOF
	}
	r := s.recs[s.pos]
	s.pos++
	return r, nil
}

func TestFSMBasicLifecycle(t *testing.T) {
	rt := New()
	recs := ribRecords(1000, true, "10.0.0.0/8", "192.0.2.0/24")
	feed(t, rt, recs...)
	states := rt.VPStates()
	if states[key()] != VPUp {
		t.Fatalf("state after RIB = %s", states[key()])
	}
	tbl, ok := rt.Table(key())
	if !ok || len(tbl) != 2 {
		t.Fatalf("table = %v consistent=%v", tbl, ok)
	}
}

func TestUpdatesModifyTable(t *testing.T) {
	rt := New()
	var recs []*core.Record
	recs = append(recs, ribRecords(1000, true, "10.0.0.0/8")...)
	recs = append(recs, announceRec(1100, "203.0.113.0/24", peerAS, 174, 9999))
	recs = append(recs, withdrawRec(1200, "10.0.0.0/8"))
	feed(t, rt, recs...)
	tbl, ok := rt.Table(key())
	if !ok {
		t.Fatal("table inconsistent")
	}
	if len(tbl) != 1 {
		t.Fatalf("table: %v", tbl)
	}
	c, present := tbl[netip.MustParsePrefix("203.0.113.0/24")]
	if !present || c.Path.String() != "64501 174 9999" {
		t.Fatalf("announced cell: %+v", c)
	}
}

func TestE1CorruptedRIBDiscarded(t *testing.T) {
	rt := New()
	good := ribRecords(1000, true, "10.0.0.0/8")
	feed(t, rt, good...)
	// Second RIB dump has a corrupted record in the middle; its
	// content must not replace the good table.
	bad := ribRecords(2000, true, "99.0.0.0/8")
	corrupt := &core.Record{Collector: "rrc00", DumpType: core.DumpRIB, Status: core.StatusCorruptedRecord}
	recs := []*core.Record{bad[0], bad[1], corrupt}
	// Note: the "end" flag was on bad[1]; simulate the dump ending
	// with the corrupted record by marking it.
	bad[1].Position &^= core.PositionEnd
	corrupt.Position |= core.PositionEnd
	// A corrupted record yields no elems, so merge happens on E1 path
	// only via position end of a later valid record; feed a trailing
	// RIB end marker record carrying no elems.
	feed(t, rt, recs...)
	tbl, _ := rt.Table(key())
	if _, has := tbl[netip.MustParsePrefix("99.0.0.0/8")]; has {
		t.Fatal("corrupted RIB content applied")
	}
	if _, has := tbl[netip.MustParsePrefix("10.0.0.0/8")]; !has {
		t.Fatal("previous table lost")
	}
}

func TestE2StaleRIBRecordSkipped(t *testing.T) {
	rt := New()
	feed(t, rt, ribRecords(1000, true, "10.0.0.0/8")...)
	// An update at t=3000 changes the path…
	feed(t, rt, announceRec(3000, "10.0.0.0/8", peerAS, 174, 3356))
	// …then a RIB dump whose records are timestamped t=2000 (older;
	// out-of-order publication) must NOT overwrite the newer update.
	feed(t, rt, ribRecords(2000, true, "10.0.0.0/8")...)
	tbl, _ := rt.Table(key())
	c := tbl[netip.MustParsePrefix("10.0.0.0/8")]
	if c.Path.String() != "64501 174 3356" {
		t.Fatalf("stale RIB overwrote newer update: %s", c.Path)
	}
}

func TestE3CorruptedUpdatesFreezes(t *testing.T) {
	rt := New()
	feed(t, rt, ribRecords(1000, true, "10.0.0.0/8")...)
	corrupt := &core.Record{Collector: "rrc00", DumpType: core.DumpUpdates, Status: core.StatusCorruptedRecord}
	feed(t, rt, corrupt)
	if st := rt.VPStates()[key()]; st.Consistent() {
		t.Fatalf("state after corrupted updates = %s", st)
	}
	// Updates while frozen are ignored.
	feed(t, rt, announceRec(1100, "99.0.0.0/8", peerAS, 1))
	tbl, ok := rt.Table(key())
	if ok {
		t.Fatal("table claims consistency while frozen")
	}
	if _, has := tbl[netip.MustParsePrefix("99.0.0.0/8")]; has {
		t.Fatal("update applied while frozen")
	}
	// The next RIB dump recovers.
	feed(t, rt, ribRecords(2000, true, "10.0.0.0/8", "99.0.0.0/8")...)
	tbl, ok = rt.Table(key())
	if !ok || len(tbl) != 2 {
		t.Fatalf("after recovery: %v %v", tbl, ok)
	}
}

func TestE4StateMessages(t *testing.T) {
	rt := New()
	feed(t, rt, ribRecords(1000, true, "10.0.0.0/8")...)
	feed(t, rt, stateRec(1100, bgp.StateEstablished, bgp.StateIdle))
	if st := rt.VPStates()[key()]; st != VPDown {
		t.Fatalf("after Idle state msg: %s", st)
	}
	tbl, _ := rt.Table(key())
	if len(tbl) != 0 {
		t.Fatalf("routes survive session loss: %v", tbl)
	}
	feed(t, rt, stateRec(1200, bgp.StateOpenConfirm, bgp.StateEstablished))
	if st := rt.VPStates()[key()]; st != VPUp {
		t.Fatalf("after Established state msg: %s", st)
	}
}

func TestVPMissingFromRIBDeclaredDown(t *testing.T) {
	rt := New()
	feed(t, rt, ribRecords(1000, true, "10.0.0.0/8")...)
	// Next RIB dump contains the peer index but no routes for the VP
	// (RouteViews-style silent death).
	pit := &mrt.PeerIndexTable{CollectorBGPID: netip.MustParseAddr("198.51.100.1"),
		Peers: []mrt.Peer{{BGPID: peerIP, IP: peerIP, AS: peerAS}}}
	raw := mrt.NewPeerIndexRecord(2000, pit)
	empty := &core.Record{Collector: "rrc00", DumpType: core.DumpRIB, Status: core.StatusValid,
		Position: core.PositionStart | core.PositionEnd, MRT: raw}
	feed(t, rt, empty)
	if st := rt.VPStates()[key()]; st != VPDown {
		t.Fatalf("VP absent from RIB still %s", st)
	}
}

func TestDiffsPublishedPerBin(t *testing.T) {
	rt := New()
	pub := &capturePublisher{}
	rt.Publisher = pub
	var recs []*core.Record
	recs = append(recs, ribRecords(0, true, "10.0.0.0/8", "192.0.2.0/24")...)
	recs = append(recs, announceRec(400, "203.0.113.0/24", peerAS, 1)) // bin 2
	recs = append(recs, announceRec(401, "203.0.113.0/24", peerAS, 1)) // duplicate: no diff
	recs = append(recs, withdrawRec(700, "10.0.0.0/8"))                // bin 3
	feed(t, rt, recs...)
	if len(pub.batches) < 2 {
		t.Fatalf("batches: %+v", pub.batches)
	}
	// First bin: 2 cells from the RIB.
	if pub.batches[0].n != 2 {
		t.Errorf("bin0 diffs = %d", pub.batches[0].n)
	}
	// Announce bin: exactly 1 (duplicate announcement dedup'd).
	if pub.batches[1].n != 1 {
		t.Errorf("bin1 diffs = %d", pub.batches[1].n)
	}
	// Withdrawal bin: one un-announced diff.
	found := false
	for _, d := range pub.batches[2].diffs {
		if d.Prefix == netip.MustParsePrefix("10.0.0.0/8") && !d.Announced {
			found = true
		}
	}
	if !found {
		t.Errorf("withdrawal diff missing: %+v", pub.batches[2].diffs)
	}
	// Figure 9 counters exist and diffs <= elems overall.
	totalElems, totalDiffs := 0, 0
	for _, s := range rt.Stats {
		totalElems += s.Elems
		totalDiffs += s.DiffCells
	}
	if totalElems == 0 || totalDiffs == 0 || totalDiffs > totalElems {
		t.Errorf("stats: elems=%d diffs=%d", totalElems, totalDiffs)
	}
}

type batch struct {
	collector string
	n         int
	diffs     []Diff
	snapshot  bool
}

type capturePublisher struct {
	batches []batch
}

func (c *capturePublisher) PublishDiffs(coll string, bin time.Time, diffs []Diff) error {
	c.batches = append(c.batches, batch{collector: coll, n: len(diffs), diffs: diffs})
	return nil
}

func (c *capturePublisher) PublishSnapshot(coll string, bin time.Time, cells []Diff) error {
	c.batches = append(c.batches, batch{collector: coll, n: len(cells), diffs: cells, snapshot: true})
	return nil
}

func TestSnapshotsPublished(t *testing.T) {
	rt := New()
	pub := &capturePublisher{}
	rt.Publisher = pub
	rt.SnapshotEvery = 2
	var recs []*core.Record
	recs = append(recs, ribRecords(0, true, "10.0.0.0/8")...)
	recs = append(recs, announceRec(400, "203.0.113.0/24", peerAS, 1))
	recs = append(recs, announceRec(700, "99.0.0.0/8", peerAS, 1))
	feed(t, rt, recs...)
	snaps := 0
	for _, b := range pub.batches {
		if b.snapshot {
			snaps++
			if b.n == 0 {
				t.Error("empty snapshot")
			}
		}
	}
	if snaps == 0 {
		t.Fatal("no snapshots published")
	}
}

// TestRTReconstructionAccuracy runs the full pipeline over a simulated
// archive and replays the §6.2.1 audit: tables maintained from updates
// must match the next RIB dump (error probability ≈ 0 on clean data).
func TestRTReconstructionAccuracy(t *testing.T) {
	p := astopo.DefaultParams(31)
	p.TierOneCount = 4
	p.TierTwoCount = 8
	p.StubCount = 25
	topo := astopo.Generate(p)
	sim, err := collector.NewSimulator(collector.Config{
		Topo:              topo,
		Collectors:        collector.DefaultCollectors(topo, 5),
		ChurnFlapsPerHour: 20,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := archive.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	if _, err := sim.GenerateArchive(st, start, start.Add(6*time.Hour)); err != nil {
		t.Fatal(err)
	}
	stream := core.NewStream(context.Background(), &core.Directory{Dir: st.Root},
		core.Filters{Collectors: []string{"route-views2"}})
	defer stream.Close()
	rt := New()
	r := &corsaro.Runner{Source: stream, Interval: time.Minute, Plugins: []corsaro.Plugin{rt}}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.AuditCells == 0 {
		t.Fatal("audit never ran (no second RIB dump?)")
	}
	errProb := float64(rt.AuditMismatches) / float64(rt.AuditCells)
	if errProb > 0.001 {
		t.Errorf("reconstruction error probability %.6f (mismatches %d of %d)",
			errProb, rt.AuditMismatches, rt.AuditCells)
	}
	t.Logf("audit: %d mismatches over %d cells (p=%.2e)", rt.AuditMismatches, rt.AuditCells, errProb)
}
