// Package rtables implements the routing-tables (RT) plugin of §6.2.1:
// it reconstructs, for every vantage point of a collector, the
// observable Loc-RIB ("routing table") at fine time granularity by
// replaying RIB dumps and update messages, modelling per-VP session
// state with the finite-state machine of Figure 8, and guarding
// against the real-world failure modes the paper enumerates:
//
//	E1 — a corrupted record inside a RIB dump discards the whole dump;
//	E2 — RIB records older than already-applied updates are skipped;
//	E3 — a corrupted Updates record stops update application until the
//	     next RIB dump;
//	E4 — session state messages force FSM transitions.
//
// At the end of each time bin the plugin publishes diff cells — only
// the changed portions of each table (§6.2.2) — plus periodic full
// snapshots that let late consumers synchronise.
package rtables

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/bgp"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/corsaro"
)

// VPState is the Figure 8 finite-state machine state of one VP.
type VPState int

// FSM states. The two "consistent routing table" macro-states are Up
// and UpRIB; Down and DownRIB mean the table is unavailable.
const (
	VPDown VPState = iota
	VPDownRIB
	VPUp
	VPUpRIB
)

// String names the state as in Figure 8.
func (s VPState) String() string {
	switch s {
	case VPDown:
		return "down"
	case VPDownRIB:
		return "down-RIB-application"
	case VPUp:
		return "up"
	case VPUpRIB:
		return "up-RIB-application"
	default:
		return fmt.Sprintf("vpstate(%d)", int(s))
	}
}

// Consistent reports whether the routing table is usable in this
// state.
func (s VPState) Consistent() bool { return s == VPUp || s == VPUpRIB }

// VPKey identifies a vantage point within a collector.
type VPKey struct {
	Collector string
	Addr      netip.Addr
	ASN       uint32
}

// Cell is one (prefix, VP) entry of the reconstructed table: the
// reachability attributes, the timestamp of the last modification,
// and the announced/withdrawn flag (§6.2.1 "A/W flag").
type Cell struct {
	Path         bgp.ASPath
	Communities  bgp.Communities
	NextHop      netip.Addr
	LastModified time.Time
	Announced    bool
}

func (c *Cell) equalRoute(o *Cell) bool {
	if c == nil || o == nil {
		return c == o
	}
	return c.Announced == o.Announced &&
		c.NextHop == o.NextHop &&
		c.Path.Equal(o.Path) &&
		communitiesEqual(c.Communities, o.Communities)
}

func communitiesEqual(a, b bgp.Communities) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// vpTable is the per-VP state: FSM state, main cells, shadow cells.
type vpTable struct {
	state  VPState
	cells  map[netip.Prefix]*Cell
	shadow map[netip.Prefix]*Cell
	// dirty marks prefixes changed since the last published bin.
	dirty map[netip.Prefix]bool
	// sawShadow reports whether the in-progress RIB dump contained
	// this VP.
	sawShadow bool
	// frozen is set by E3 (corrupted updates): stop applying updates
	// until the next RIB dump.
	frozen bool
}

func newVPTable() *vpTable {
	return &vpTable{
		state:  VPDown,
		cells:  make(map[netip.Prefix]*Cell),
		shadow: make(map[netip.Prefix]*Cell),
		dirty:  make(map[netip.Prefix]bool),
	}
}

// Diff is one published cell change.
type Diff struct {
	VP        VPKey
	Prefix    netip.Prefix
	Announced bool
	Path      string
	NextHop   netip.Addr
	Timestamp int64
}

// Publisher receives per-bin diff batches and periodic full
// snapshots; internal/mq provides the Kafka-style implementation.
type Publisher interface {
	PublishDiffs(collector string, binStart time.Time, diffs []Diff) error
	PublishSnapshot(collector string, binStart time.Time, cells []Diff) error
}

// BinStats captures the Figure 9 counters for one bin.
type BinStats struct {
	BinStart int64
	// Elems is the number of BGP elems applied in the bin.
	Elems int
	// DiffCells is the number of changed cells published.
	DiffCells int
}

// RT is the routing-tables plugin. It implements corsaro.Plugin.
type RT struct {
	// Publisher, when set, receives diffs and snapshots.
	Publisher Publisher
	// SnapshotEvery publishes a full table every N bins (0 = never).
	SnapshotEvery int

	// Stats accumulates per-bin elem/diff counters (Figure 9).
	Stats []BinStats

	// Accuracy counters from the RIB-merge audit (§6.2.1): cells where
	// the update-maintained value disagreed with the RIB shadow value.
	AuditMismatches int
	AuditCells      int

	vps map[VPKey]*vpTable
	// collectors tracks every collector seen, so each publishes a
	// batch every bin (consumers and sync servers rely on one batch
	// per collector per bin, even when nothing changed).
	collectors map[string]bool
	// ribCorrupt tracks collectors whose in-progress RIB dump hit a
	// corrupted record (E1).
	ribCorrupt map[string]bool
	binElems   int
	binCount   int
}

// New creates the plugin.
func New() *RT {
	return &RT{
		vps:        make(map[VPKey]*vpTable),
		collectors: make(map[string]bool),
		ribCorrupt: make(map[string]bool),
	}
}

// Name implements corsaro.Plugin.
func (rt *RT) Name() string { return "routing-tables" }

// VPStates returns a snapshot of every known VP's FSM state.
func (rt *RT) VPStates() map[VPKey]VPState {
	out := make(map[VPKey]VPState, len(rt.vps))
	for k, v := range rt.vps {
		out[k] = v.state
	}
	return out
}

// Table returns the reconstructed, currently-announced routes of one
// VP and whether the table is consistent (usable).
func (rt *RT) Table(key VPKey) (map[netip.Prefix]Cell, bool) {
	v, ok := rt.vps[key]
	if !ok {
		return nil, false
	}
	out := make(map[netip.Prefix]Cell, len(v.cells))
	for p, c := range v.cells {
		if c.Announced {
			out[p] = *c
		}
	}
	return out, v.state.Consistent()
}

func (rt *RT) vp(key VPKey) *vpTable {
	v, ok := rt.vps[key]
	if !ok {
		v = newVPTable()
		rt.vps[key] = v
	}
	return v
}

// Process implements corsaro.Plugin.
func (rt *RT) Process(ctx *corsaro.Context) error {
	rec := ctx.Record
	rt.collectors[rec.Collector] = true
	switch {
	case rec.Status != core.StatusValid:
		rt.processCorrupted(rec)
		return nil
	case rec.DumpType == core.DumpRIB:
		rt.processRIBRecord(rec, ctx.Elems)
		return nil
	default:
		rt.processUpdates(rec, ctx.Elems)
		return nil
	}
}

// processCorrupted implements E1 and E3.
func (rt *RT) processCorrupted(rec *core.Record) {
	if rec.DumpType == core.DumpRIB {
		// E1: poison the in-progress RIB dump of this collector.
		rt.ribCorrupt[rec.Collector] = true
		return
	}
	// E3: stop applying updates for this collector's VPs, wait for
	// the next RIB dump; tables become unavailable.
	for key, v := range rt.vps {
		if key.Collector != rec.Collector {
			continue
		}
		v.frozen = true
		rt.toDown(v)
	}
}

func (rt *RT) toDown(v *vpTable) {
	switch v.state {
	case VPUp:
		v.state = VPDown
	case VPUpRIB:
		v.state = VPDownRIB
	}
}

// processRIBRecord routes RIB-dump records through the shadow-cell
// machinery.
func (rt *RT) processRIBRecord(rec *core.Record, elems []core.Elem) {
	if rec.Position.IsStart() {
		// New RIB dump begins: reset corruption flag and shadows.
		rt.ribCorrupt[rec.Collector] = false
		for key, v := range rt.vps {
			if key.Collector != rec.Collector {
				continue
			}
			v.shadow = make(map[netip.Prefix]*Cell)
			v.sawShadow = false
		}
	}
	ts := rec.Time()
	for i := range elems {
		e := &elems[i]
		if e.Type != core.ElemRIB {
			continue
		}
		rt.binElems++
		key := VPKey{Collector: rec.Collector, Addr: e.PeerAddr, ASN: e.PeerASN}
		v := rt.vp(key)
		v.sawShadow = true
		// Entering RIB application (Figure 8 transitions 2 and 4).
		switch v.state {
		case VPDown:
			v.state = VPDownRIB
		case VPUp:
			v.state = VPUpRIB
		}
		// E2: skip RIB information not strictly newer than what
		// updates already applied to the main cell (a same-second
		// update is at least as fresh as the snapshot).
		if main, ok := v.cells[e.Prefix]; ok && !ts.After(main.LastModified) {
			continue
		}
		v.shadow[e.Prefix] = &Cell{
			Path:         e.ASPath,
			Communities:  e.Communities,
			NextHop:      e.NextHop,
			LastModified: ts,
			Announced:    true,
		}
	}
	if rec.Position.IsEnd() {
		rt.mergeRIB(rec.Collector, ts)
	}
}

// mergeRIB applies shadow cells at RIB-dump end: the Figure 8
// up-RIB-application → up transition, plus the E1 discard and the
// RouteViews staleness mitigation (a VP absent from the latest RIB is
// declared down).
func (rt *RT) mergeRIB(collector string, ts time.Time) {
	corrupt := rt.ribCorrupt[collector]
	for key, v := range rt.vps {
		if key.Collector != collector {
			continue
		}
		if corrupt {
			// E1: ignore the whole dump.
			v.shadow = make(map[netip.Prefix]*Cell)
			v.sawShadow = false
			continue
		}
		if !v.sawShadow {
			// VP missing from the latest RIB: stale table, declare
			// down (mitigation for projects without state messages).
			if len(v.cells) > 0 {
				for p := range v.cells {
					v.dirty[p] = true
				}
				v.cells = make(map[netip.Prefix]*Cell)
			}
			v.state = VPDown
			continue
		}
		// Audit (§6.2.1 accuracy): before replacing, compare announced
		// main cells with their shadow counterparts.
		for p, main := range v.cells {
			if !main.Announced {
				continue
			}
			rt.AuditCells++
			if sh, ok := v.shadow[p]; !ok || !main.equalRoute(sh) {
				rt.AuditMismatches++
			}
		}
		// Replace: shadow wins except where updates are at least as
		// new (E2 was applied at insert time; a main cell modified at
		// or after the RIB record keeps priority).
		newCells := make(map[netip.Prefix]*Cell, len(v.shadow))
		for p, sh := range v.shadow {
			if main, ok := v.cells[p]; ok && !sh.LastModified.After(main.LastModified) {
				newCells[p] = main
				if !main.equalRoute(sh) {
					v.dirty[p] = true
				}
			} else {
				if main, ok := v.cells[p]; !ok || !main.equalRoute(sh) {
					v.dirty[p] = true
				}
				newCells[p] = sh
			}
		}
		// Prefixes that vanished from the RIB and were not updated at
		// or after the snapshot are withdrawn.
		for p, main := range v.cells {
			if _, ok := newCells[p]; ok {
				continue
			}
			if !main.LastModified.Before(ts) {
				newCells[p] = main
				continue
			}
			if main.Announced {
				v.dirty[p] = true
			}
		}
		v.cells = newCells
		v.shadow = make(map[netip.Prefix]*Cell)
		v.sawShadow = false
		v.frozen = false
		v.state = VPUp
	}
}

// processUpdates applies update-dump records: announcements,
// withdrawals, and session state messages (E4).
func (rt *RT) processUpdates(rec *core.Record, elems []core.Elem) {
	for i := range elems {
		e := &elems[i]
		key := VPKey{Collector: rec.Collector, Addr: e.PeerAddr, ASN: e.PeerASN}
		v := rt.vp(key)
		switch e.Type {
		case core.ElemPeerState:
			rt.binElems++
			if e.NewState == bgp.StateEstablished {
				// E4: Established forces up.
				v.state = VPUp
				v.frozen = false
			} else {
				rt.toDown(v)
				if v.state == VPDown && len(v.cells) > 0 {
					// Session lost: routes no longer valid.
					for p := range v.cells {
						v.dirty[p] = true
					}
					v.cells = make(map[netip.Prefix]*Cell)
				}
			}
		case core.ElemAnnouncement:
			rt.binElems++
			if v.frozen {
				continue
			}
			cell := &Cell{
				Path:         e.ASPath,
				Communities:  e.Communities,
				NextHop:      e.NextHop,
				LastModified: e.Timestamp,
				Announced:    true,
			}
			if old, ok := v.cells[e.Prefix]; !ok || !old.equalRoute(cell) {
				v.dirty[e.Prefix] = true
			}
			v.cells[e.Prefix] = cell
		case core.ElemWithdrawal:
			rt.binElems++
			if v.frozen {
				continue
			}
			if old, ok := v.cells[e.Prefix]; ok && old.Announced {
				old.Announced = false
				old.LastModified = e.Timestamp
				v.dirty[e.Prefix] = true
			}
		}
	}
}

// EndInterval implements corsaro.Plugin: publish diff cells and
// periodic snapshots, record Figure 9 counters.
func (rt *RT) EndInterval(bin corsaro.Interval) error {
	perCollector := make(map[string][]Diff, len(rt.collectors))
	for c := range rt.collectors {
		perCollector[c] = nil // every collector publishes every bin
	}
	for key, v := range rt.vps {
		for p := range v.dirty {
			d := Diff{VP: key, Prefix: p, Timestamp: bin.Start.Unix()}
			if c, ok := v.cells[p]; ok && c.Announced {
				d.Announced = true
				d.Path = c.Path.String()
				d.NextHop = c.NextHop
				d.Timestamp = c.LastModified.Unix()
			}
			perCollector[key.Collector] = append(perCollector[key.Collector], d)
		}
		v.dirty = make(map[netip.Prefix]bool)
	}
	total := 0
	for collector, diffs := range perCollector {
		total += len(diffs)
		if rt.Publisher != nil {
			if err := rt.Publisher.PublishDiffs(collector, bin.Start, diffs); err != nil {
				return err
			}
		}
	}
	rt.Stats = append(rt.Stats, BinStats{
		BinStart:  bin.Start.Unix(),
		Elems:     rt.binElems,
		DiffCells: total,
	})
	rt.binElems = 0
	rt.binCount++
	if rt.Publisher != nil && rt.SnapshotEvery > 0 && rt.binCount%rt.SnapshotEvery == 0 {
		if err := rt.publishSnapshots(bin.Start); err != nil {
			return err
		}
	}
	return nil
}

func (rt *RT) publishSnapshots(binStart time.Time) error {
	perCollector := make(map[string][]Diff)
	for key, v := range rt.vps {
		if !v.state.Consistent() {
			continue
		}
		for p, c := range v.cells {
			if !c.Announced {
				continue
			}
			perCollector[key.Collector] = append(perCollector[key.Collector], Diff{
				VP: key, Prefix: p, Announced: true,
				Path: c.Path.String(), NextHop: c.NextHop,
				Timestamp: c.LastModified.Unix(),
			})
		}
	}
	for collector, cells := range perCollector {
		if err := rt.Publisher.PublishSnapshot(collector, binStart, cells); err != nil {
			return err
		}
	}
	return nil
}
