package rtables

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/bgp"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/corsaro"
	"github.com/bgpstream-go/bgpstream/internal/mrt"
)

// naiveTable is the oracle: replay announcements/withdrawals/RIBs in
// order with last-writer-wins semantics and strictly increasing
// timestamps (the regime where the RT plugin must be exact).
type naiveTable map[netip.Prefix]string // prefix -> path string ("" = withdrawn)

// TestQuickRTMatchesNaiveReplay feeds random, monotonically-timestamped
// record sequences (updates and complete RIB dumps) to the plugin and
// compares the reconstructed table against the oracle after each RIB.
func TestQuickRTMatchesNaiveReplay(t *testing.T) {
	prefixes := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("10.1.0.0/16"),
		netip.MustParsePrefix("192.0.2.0/24"),
		netip.MustParsePrefix("198.51.100.0/24"),
		netip.MustParsePrefix("203.0.113.0/24"),
	}
	paths := [][]uint32{
		{64501, 701, 3356},
		{64501, 174, 3356},
		{64501, 701, 13335},
		{64501, 6453, 2914},
	}
	// Run a fixed set of seeds directly for clearer failure output.
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rt := New()
		oracle := naiveTable{}
		ts := uint32(1000)
		if !runScenario(rng, rt, oracle, prefixes, paths, &ts, nil) {
			t.Fatalf("seed %d: RT table diverged from naive replay", seed)
		}
		// Final check after the run.
		if !tablesAgree(rt, oracle) {
			t.Fatalf("seed %d: final tables diverge", seed)
		}
	}
}

func runScenario(rng *rand.Rand, rt *RT, oracle naiveTable, prefixes []netip.Prefix, paths [][]uint32, ts *uint32, _ func(*core.Record) bool) bool {
	feed := func(rec *core.Record) {
		ctx := &corsaro.Context{Record: rec}
		if rec.Status == core.StatusValid {
			if elems, err := rec.Elems(); err == nil {
				ctx.Elems = elems
			}
		}
		rt.Process(ctx)
	}
	nops := 30 + rng.Intn(50)
	for i := 0; i < nops; i++ {
		*ts += uint32(1 + rng.Intn(30))
		switch rng.Intn(10) {
		case 0, 1: // full RIB dump of the oracle state
			feedRIB(feed, oracle, *ts)
			if !tablesAgree(rt, oracle) {
				return false
			}
		case 2, 3, 4: // withdrawal
			p := prefixes[rng.Intn(len(prefixes))]
			oracle[p] = ""
			feed(withdrawRecP(*ts, p))
		default: // announcement
			p := prefixes[rng.Intn(len(prefixes))]
			path := paths[rng.Intn(len(paths))]
			oracle[p] = bgp.SequencePath(path...).String()
			feed(announceRecP(*ts, p, path))
		}
	}
	// Close with a RIB so the table is consistent, then compare.
	*ts += 10
	feedRIB(feed, oracle, *ts)
	return tablesAgree(rt, oracle)
}

func feedRIB(feed func(*core.Record), oracle naiveTable, ts uint32) {
	pit := &mrt.PeerIndexTable{
		CollectorBGPID: netip.MustParseAddr("198.51.100.1"),
		Peers:          []mrt.Peer{{BGPID: peerIP, IP: peerIP, AS: peerAS}},
	}
	pitRec := &core.Record{Collector: "rrc00", DumpType: core.DumpRIB, Status: core.StatusValid,
		Position: core.PositionStart, MRT: mrt.NewPeerIndexRecord(ts, pit)}
	recs := []*core.Record{pitRec}
	for p, path := range oracle {
		if path == "" {
			continue
		}
		parsed, err := bgp.ParseASPathString(path)
		if err != nil {
			panic(err)
		}
		origin := uint8(bgp.OriginIGP)
		attrs := bgp.AppendAttributes(nil, &bgp.PathAttributes{
			Origin: &origin, ASPath: parsed, HasASPath: true,
			NextHop: netip.MustParseAddr("192.0.2.1"),
		}, 4)
		rr := mrt.NewRIBRecord(ts, &mrt.RIB{Prefix: p,
			Entries: []mrt.RIBEntry{{PeerIndex: 0, OriginatedTime: ts, Attrs: attrs}}})
		rec := &core.Record{Collector: "rrc00", DumpType: core.DumpRIB, Status: core.StatusValid, MRT: rr}
		rec.SetPeerIndex(pit)
		recs = append(recs, rec)
	}
	recs[len(recs)-1].Position |= core.PositionEnd
	for _, r := range recs {
		feed(r)
	}
}

func announceRecP(ts uint32, p netip.Prefix, path []uint32) *core.Record {
	origin := uint8(bgp.OriginIGP)
	u := &bgp.Update{
		Attrs: bgp.PathAttributes{Origin: &origin, ASPath: bgp.SequencePath(path...), HasASPath: true,
			NextHop: netip.MustParseAddr("192.0.2.1")},
		NLRI: []netip.Prefix{p},
	}
	raw := mrt.NewUpdateRecord(ts, peerAS, 65000, peerIP, localIP, u)
	return &core.Record{Collector: "rrc00", DumpType: core.DumpUpdates, Status: core.StatusValid, MRT: raw}
}

func withdrawRecP(ts uint32, p netip.Prefix) *core.Record {
	u := &bgp.Update{Withdrawn: []netip.Prefix{p}}
	raw := mrt.NewUpdateRecord(ts, peerAS, 65000, peerIP, localIP, u)
	return &core.Record{Collector: "rrc00", DumpType: core.DumpUpdates, Status: core.StatusValid, MRT: raw}
}

func tablesAgree(rt *RT, oracle naiveTable) bool {
	tbl, _ := rt.Table(key())
	announced := 0
	for p, path := range oracle {
		cell, ok := tbl[p]
		if path == "" {
			if ok {
				return false
			}
			continue
		}
		announced++
		if !ok || cell.Path.String() != path {
			return false
		}
	}
	return len(tbl) == announced
}

// TestQuickRTNeverPanics hammers the plugin with arbitrary record
// soup — corrupted, unordered, duplicated — and requires graceful
// handling.
func TestQuickRTNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := New()
		feed := func(rec *core.Record) {
			ctx := &corsaro.Context{Record: rec}
			if rec.Status == core.StatusValid {
				if elems, err := rec.Elems(); err == nil {
					ctx.Elems = elems
				}
			}
			if err := rt.Process(ctx); err != nil {
				panic(err)
			}
		}
		prefixes := []netip.Prefix{
			netip.MustParsePrefix("10.0.0.0/8"),
			netip.MustParsePrefix("192.0.2.0/24"),
		}
		for i := 0; i < 60; i++ {
			ts := rng.Uint32() % 100000
			switch rng.Intn(8) {
			case 0:
				feed(&core.Record{Collector: "c", DumpType: core.DumpUpdates, Status: core.StatusCorruptedRecord})
			case 1:
				feed(&core.Record{Collector: "c", DumpType: core.DumpRIB, Status: core.StatusCorruptedDump,
					Position: core.PositionStart | core.PositionEnd})
			case 2:
				feed(stateRec(ts, bgp.FSMState(rng.Intn(7)), bgp.FSMState(rng.Intn(7))))
			case 3:
				oracle := naiveTable{prefixes[rng.Intn(2)]: "64501 1"}
				feedRIB(feed, oracle, ts)
			case 4:
				feed(withdrawRecP(ts, prefixes[rng.Intn(2)]))
			default:
				feed(announceRecP(ts, prefixes[rng.Intn(2)], []uint32{64501, rng.Uint32() % 1000}))
			}
		}
		return rt.EndInterval(corsaro.Interval{Start: time.Unix(0, 0), End: time.Unix(60, 0)}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
