package timeseries

import (
	"testing"
)

func flat(n int, v float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Unix: int64(i * 60), Value: v}
	}
	return pts
}

func TestStoreAppendGet(t *testing.T) {
	s := NewStore()
	if err := s.Append("a", Point{Unix: 1, Value: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("a", Point{Unix: 2, Value: 20}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("a", Point{Unix: 1, Value: 5}); err == nil {
		t.Error("out-of-order accepted")
	}
	got := s.Get("a")
	if len(got) != 2 || got[1].Value != 20 {
		t.Errorf("got %v", got)
	}
	if names := s.Names(); len(names) != 1 || names[0] != "a" {
		t.Errorf("names %v", names)
	}
	if pts := s.Get("missing"); len(pts) != 0 {
		t.Errorf("missing series: %v", pts)
	}
}

func TestDetectDrop(t *testing.T) {
	pts := flat(20, 100)
	// Outage: bins 20..25 at 10, recovery after.
	for i := 20; i < 26; i++ {
		pts = append(pts, Point{Unix: int64(i * 60), Value: 10})
	}
	for i := 26; i < 40; i++ {
		pts = append(pts, Point{Unix: int64(i * 60), Value: 100})
	}
	cps := Detect(pts, DefaultDetector())
	if len(cps) == 0 {
		t.Fatal("no change points")
	}
	// First change point must be the onset at bin 20, a drop.
	if cps[0].Unix != 20*60 || !cps[0].Drop {
		t.Errorf("first cp: %+v", cps[0])
	}
	// Recovery (upward) must also appear.
	sawUp := false
	for _, cp := range cps {
		if !cp.Drop {
			sawUp = true
		}
	}
	if !sawUp {
		t.Error("recovery not detected")
	}
}

func TestDetectIgnoresNoise(t *testing.T) {
	pts := flat(30, 100)
	// ±3% wiggle.
	for i := range pts {
		if i%2 == 0 {
			pts[i].Value += 3
		} else {
			pts[i].Value -= 3
		}
	}
	if cps := Detect(pts, DefaultDetector()); len(cps) != 0 {
		t.Errorf("noise flagged: %+v", cps)
	}
}

func TestDetectSpikeUp(t *testing.T) {
	pts := flat(15, 1)
	pts = append(pts, Point{Unix: 15 * 60, Value: 30})
	cfg := DetectorConfig{Window: 10, MinRelDelta: 0.5, MinAbsDelta: 2}
	cps := Detect(pts, cfg)
	if len(cps) != 1 || cps[0].Drop {
		t.Errorf("spike: %+v", cps)
	}
}

func TestDetectShortSeries(t *testing.T) {
	if cps := Detect(flat(3, 5), DefaultDetector()); cps != nil {
		t.Errorf("short series flagged: %v", cps)
	}
}

func TestDetectZeroBaseline(t *testing.T) {
	pts := flat(15, 0)
	pts = append(pts, Point{Unix: 15 * 60, Value: 50})
	cps := Detect(pts, DefaultDetector())
	if len(cps) != 1 || cps[0].Drop {
		t.Errorf("zero-baseline spike: %+v", cps)
	}
}
