package timeseries

import (
	"context"
	"strings"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/obsv"
)

// Scraper bridges obsv metrics into a Store: on each tick it samples
// selected registry series and appends them as timestamped points, so
// the change-point detector can watch operational health (repair
// backlog, subscriber counts) with the same machinery it applies to
// BGP visibility series.
type Scraper struct {
	// Registry to sample; nil means obsv.Default.
	Registry *obsv.Registry
	// Store receives the points. Required.
	Store *Store
	// Metrics selects the family names to sample. Empty samples every
	// counter and gauge family. Histograms contribute their _count.
	Metrics []string
	// Interval is the sampling cadence for Run (default 10s).
	Interval time.Duration
}

// series names one scraped point target: the family plus its label
// values, joined Prometheus-style into a Store series name.
func seriesName(p obsv.MetricPoint) string {
	if len(p.LabelValues) == 0 {
		return p.Family
	}
	var b strings.Builder
	b.WriteString(p.Family)
	b.WriteByte('{')
	for i, n := range p.LabelNames {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(p.LabelValues[i])
	}
	b.WriteByte('}')
	return b.String()
}

func (s *Scraper) registry() *obsv.Registry {
	if s.Registry != nil {
		return s.Registry
	}
	return obsv.Default
}

func (s *Scraper) wants(family string) bool {
	if len(s.Metrics) == 0 {
		return true
	}
	for _, m := range s.Metrics {
		if m == family {
			return true
		}
	}
	return false
}

// ScrapeOnce samples the selected series at the given timestamp,
// appending one point per series. Errors from out-of-order appends
// (clock steps) are reported for the first failing series.
func (s *Scraper) ScrapeOnce(now time.Time) error {
	var firstErr error
	for _, p := range s.registry().Gather() {
		if !s.wants(p.Family) {
			continue
		}
		v := p.Value
		if p.Hist != nil {
			v = float64(p.Hist.Count)
		}
		err := s.Store.Append(seriesName(p), Point{Unix: now.Unix(), Value: v})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Run samples on the configured interval until ctx is done. Append
// errors are skipped (a stepped clock heals on the next tick).
func (s *Scraper) Run(ctx context.Context) {
	interval := s.Interval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.ScrapeOnce(now)
		}
	}
}
