// Package timeseries is the small time-series store behind the
// monitoring consumers: named series of (timestamp, value) points in
// regular bins, with the automated change-point detection used for
// outage alerting (§6.2.4: "a time series monitoring system
// supporting automated change-point detection").
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Point is one sample.
type Point struct {
	Unix  int64
	Value float64
}

// Store holds named series. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	series map[string][]Point
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{series: make(map[string][]Point)}
}

// Append adds a point to a series (created on first use). Points must
// arrive in non-decreasing time order per series.
func (s *Store) Append(name string, p Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := s.series[name]
	if n := len(pts); n > 0 && p.Unix < pts[n-1].Unix {
		return fmt.Errorf("timeseries: out-of-order point %d < %d in %s", p.Unix, pts[n-1].Unix, name)
	}
	s.series[name] = append(pts, p)
	return nil
}

// Get returns a copy of the named series.
func (s *Store) Get(name string) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Point(nil), s.series[name]...)
}

// Names lists the stored series, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for n := range s.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ChangePoint is one detected level shift.
type ChangePoint struct {
	Unix int64
	// Value is the sample that triggered detection.
	Value float64
	// Baseline is the reference level it deviated from.
	Baseline float64
	// Drop is true for downward shifts (outages), false for upward
	// ones (e.g. MOAS spikes).
	Drop bool
}

// DetectorConfig tunes change-point detection.
type DetectorConfig struct {
	// Window is how many preceding points form the baseline.
	Window int
	// MinRelDelta is the minimum |v-baseline|/baseline to flag.
	MinRelDelta float64
	// MinAbsDelta additionally requires an absolute deviation, which
	// suppresses noise on near-zero series.
	MinAbsDelta float64
}

// DefaultDetector matches the per-country outage use: a 12-bin
// baseline and a 30% level shift.
func DefaultDetector() DetectorConfig {
	return DetectorConfig{Window: 12, MinRelDelta: 0.3, MinAbsDelta: 5}
}

// Detect finds level shifts: points deviating from the median of the
// preceding window by the configured margins. The baseline window
// always tracks the raw history, so a sustained outage is reported at
// its onset (and again at recovery).
func Detect(points []Point, cfg DetectorConfig) []ChangePoint {
	if cfg.Window <= 0 {
		cfg.Window = 12
	}
	var out []ChangePoint
	for i := cfg.Window; i < len(points); i++ {
		base := median(points[i-cfg.Window : i])
		v := points[i].Value
		delta := v - base
		abs := math.Abs(delta)
		if abs < cfg.MinAbsDelta {
			continue
		}
		if base > 0 && abs/base < cfg.MinRelDelta {
			continue
		}
		if base == 0 && v == 0 {
			continue
		}
		// Only report the first point of a shifted run: skip if the
		// previous point already deviated in the same direction.
		if i > cfg.Window {
			prevDelta := points[i-1].Value - median(points[i-cfg.Window-1:i-1])
			if sameSign(prevDelta, delta) && math.Abs(prevDelta) >= cfg.MinAbsDelta {
				pb := median(points[i-cfg.Window-1 : i-1])
				if pb == 0 || math.Abs(prevDelta)/pb >= cfg.MinRelDelta {
					continue
				}
			}
		}
		out = append(out, ChangePoint{
			Unix:     points[i].Unix,
			Value:    v,
			Baseline: base,
			Drop:     delta < 0,
		})
	}
	return out
}

func sameSign(a, b float64) bool {
	return (a < 0) == (b < 0)
}

func median(pts []Point) float64 {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.Value
	}
	sort.Float64s(vals)
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
