package timeseries

import (
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/obsv"
)

// TestScraperBridgesRepairGauges exercises the satellite use case: the
// repair backlog gauge becomes a Store series the change-point
// detector can watch.
func TestScraperBridgesRepairGauges(t *testing.T) {
	reg := obsv.NewRegistry()
	queued := reg.Gauge("bgpstream_gaprepair_repairs_queued", "")
	st := NewStore()
	sc := &Scraper{
		Registry: reg,
		Store:    st,
		Metrics:  []string{"bgpstream_gaprepair_repairs_queued"},
	}
	base := time.Unix(1700000000, 0)
	for i := 0; i < 15; i++ {
		queued.Set(int64(2))
		if i >= 12 {
			queued.Set(40) // backlog spike: repairs are falling behind
		}
		if err := sc.ScrapeOnce(base.Add(time.Duration(i) * time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	pts := st.Get("bgpstream_gaprepair_repairs_queued")
	if len(pts) != 15 {
		t.Fatalf("points = %d, want 15", len(pts))
	}
	cps := Detect(pts, DefaultDetector())
	if len(cps) == 0 {
		t.Fatal("no change point detected on repair backlog spike")
	}
	if cps[0].Drop {
		t.Fatalf("spike detected as drop: %+v", cps[0])
	}
}

// TestScraperAllFamiliesAndLabels covers default selection (all
// counter/gauge families), label rendering, and histogram _count
// sampling.
func TestScraperAllFamiliesAndLabels(t *testing.T) {
	reg := obsv.NewRegistry()
	reg.Counter("scrape_a_total", "").Add(5)
	reg.GaugeVec("scrape_b", "", "transport").With("sse").Set(3)
	h := reg.Histogram("scrape_c_seconds", "", 1)
	h.Observe(0.5)
	h.Observe(2)
	st := NewStore()
	sc := &Scraper{Registry: reg, Store: st}
	if err := sc.ScrapeOnce(time.Unix(1700000000, 0)); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"scrape_a_total":          5,
		"scrape_b{transport=sse}": 3,
		"scrape_c_seconds":        2, // histogram samples its count
	}
	for name, want := range checks {
		pts := st.Get(name)
		if len(pts) != 1 || pts[0].Value != want {
			t.Errorf("%s = %v, want one point of %v", name, pts, want)
		}
	}
}

func TestScraperOutOfOrderReported(t *testing.T) {
	reg := obsv.NewRegistry()
	reg.Gauge("scrape_d", "")
	st := NewStore()
	sc := &Scraper{Registry: reg, Store: st}
	if err := sc.ScrapeOnce(time.Unix(2000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := sc.ScrapeOnce(time.Unix(1000, 0)); err == nil {
		t.Fatal("out-of-order scrape not reported")
	}
}
