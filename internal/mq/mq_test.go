package mq

import (
	"context"
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/rtables"
)

func TestBrokerProduceFetch(t *testing.T) {
	b := NewBroker()
	base := b.Produce("t", []byte("a"), []byte("b"))
	if base != 0 {
		t.Errorf("base = %d", base)
	}
	if base := b.Produce("t", []byte("c")); base != 2 {
		t.Errorf("second base = %d", base)
	}
	msgs, next := b.Fetch("t", 0, 10)
	if len(msgs) != 3 || next != 3 {
		t.Fatalf("fetch: %d msgs next %d", len(msgs), next)
	}
	if string(msgs[0]) != "a" || string(msgs[2]) != "c" {
		t.Errorf("contents: %q", msgs)
	}
	// Partial fetch.
	msgs, next = b.Fetch("t", 1, 1)
	if len(msgs) != 1 || string(msgs[0]) != "b" || next != 2 {
		t.Errorf("partial: %q next %d", msgs, next)
	}
	// Caught up.
	msgs, next = b.Fetch("t", 3, 10)
	if len(msgs) != 0 || next != 3 {
		t.Errorf("caught up: %q next %d", msgs, next)
	}
	// Unknown topic.
	msgs, next = b.Fetch("nope", 5, 10)
	if msgs != nil || next != 5 {
		t.Errorf("unknown topic: %q %d", msgs, next)
	}
}

func TestBrokerMessagesAreCopied(t *testing.T) {
	b := NewBroker()
	m := []byte("mutate-me")
	b.Produce("t", m)
	m[0] = 'X'
	msgs, _ := b.Fetch("t", 0, 1)
	if string(msgs[0]) != "mutate-me" {
		t.Error("broker aliased producer buffer")
	}
}

func TestFetchWaitBlocksUntilProduce(t *testing.T) {
	b := NewBroker()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond)
		b.Produce("t", []byte("late"))
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	msgs, next, err := b.FetchWait(ctx, "t", 0, 10)
	wg.Wait()
	if err != nil || len(msgs) != 1 || next != 1 {
		t.Fatalf("FetchWait: %q %d %v", msgs, next, err)
	}
}

func TestFetchWaitContextCancel(t *testing.T) {
	b := NewBroker()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := b.FetchWait(ctx, "t", 0, 10)
	if err == nil {
		t.Fatal("FetchWait returned without data or error")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	b := NewBroker()
	srv := NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	base, err := cl.Produce("topic-a", []byte("one"), []byte("two"))
	if err != nil || base != 0 {
		t.Fatalf("produce: %d %v", base, err)
	}
	msgs, next, err := cl.Fetch("topic-a", 0, 10, 0)
	if err != nil || len(msgs) != 2 || next != 2 {
		t.Fatalf("fetch: %q %d %v", msgs, next, err)
	}
	if string(msgs[1]) != "two" {
		t.Errorf("payload: %q", msgs[1])
	}
	end, err := cl.EndOffset("topic-a")
	if err != nil || end != 2 {
		t.Fatalf("end: %d %v", end, err)
	}
	topics, err := cl.Topics()
	if err != nil || len(topics) != 1 || topics[0] != "topic-a" {
		t.Fatalf("topics: %v %v", topics, err)
	}
}

func TestTCPFetchBlocking(t *testing.T) {
	b := NewBroker()
	srv := NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	go func() {
		time.Sleep(20 * time.Millisecond)
		b.Produce("t", []byte("x"))
	}()
	start := time.Now()
	msgs, _, err := cl.Fetch("t", 0, 1, 2*time.Second)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("blocking fetch: %q %v", msgs, err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("fetch returned before produce")
	}
	// Timeout path: no data at offset 1.
	msgs, next, err := cl.Fetch("t", 1, 1, 30*time.Millisecond)
	if err != nil || len(msgs) != 0 || next != 1 {
		t.Fatalf("timeout fetch: %q %d %v", msgs, next, err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	b := NewBroker()
	srv := NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for j := 0; j < 50; j++ {
				if _, err := cl.Produce("shared", []byte{byte(id), byte(j)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if end := b.EndOffset("shared"); end != n*50 {
		t.Errorf("end offset = %d, want %d", end, n*50)
	}
}

func sampleDiffs() []rtables.Diff {
	return []rtables.Diff{
		{
			VP:        rtables.VPKey{Collector: "rrc00", Addr: netip.MustParseAddr("192.0.2.10"), ASN: 64501},
			Prefix:    netip.MustParsePrefix("10.0.0.0/8"),
			Announced: true,
			Path:      "64501 701 3356",
			NextHop:   netip.MustParseAddr("192.0.2.1"),
			Timestamp: 1000,
		},
		{
			VP:     rtables.VPKey{Collector: "rrc00", Addr: netip.MustParseAddr("192.0.2.10"), ASN: 64501},
			Prefix: netip.MustParsePrefix("203.0.113.0/24"),
		},
	}
}

func TestDiffBatchCodec(t *testing.T) {
	in := &DiffBatch{Collector: "rrc00", BinStart: 12345, Diffs: sampleDiffs()}
	data, err := EncodeDiffBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeDiffBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n%+v\n%+v", in, out)
	}
	if _, err := DecodeDiffBatch([]byte("garbage")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestRTPublisherWritesTopicsAndMeta(t *testing.T) {
	b := NewBroker()
	pub := &RTPublisher{Producer: LocalProducer{Broker: b}}
	bin := time.Unix(6000, 0)
	if err := pub.PublishDiffs("rrc00", bin, sampleDiffs()); err != nil {
		t.Fatal(err)
	}
	if err := pub.PublishSnapshot("rrc00", bin, sampleDiffs()[:1]); err != nil {
		t.Fatal(err)
	}
	// Diff topic has two batches.
	msgs, _ := b.Fetch(DiffTopic("rrc00"), 0, 10)
	if len(msgs) != 2 {
		t.Fatalf("diff topic: %d messages", len(msgs))
	}
	batch, err := DecodeDiffBatch(msgs[0])
	if err != nil || batch.Snapshot || len(batch.Diffs) != 2 || batch.BinStart != 6000 {
		t.Fatalf("batch0: %+v %v", batch, err)
	}
	snap, err := DecodeDiffBatch(msgs[1])
	if err != nil || !snap.Snapshot {
		t.Fatalf("batch1: %+v %v", snap, err)
	}
	// Meta topic mirrors both, with offsets pointing into the diff
	// topic.
	metaMsgs, _ := b.Fetch(MetaTopic, 0, 10)
	if len(metaMsgs) != 2 {
		t.Fatalf("meta topic: %d messages", len(metaMsgs))
	}
	m0, err := DecodeMeta(metaMsgs[0])
	if err != nil || m0.Collector != "rrc00" || m0.Offset != 0 || m0.Count != 2 {
		t.Fatalf("meta0: %+v %v", m0, err)
	}
	m1, _ := DecodeMeta(metaMsgs[1])
	if !m1.Snapshot || m1.Offset != 1 {
		t.Fatalf("meta1: %+v", m1)
	}
}

func BenchmarkBrokerProduceFetch(b *testing.B) {
	br := NewBroker()
	msg := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Produce("bench", msg)
		br.Fetch("bench", int64(i), 1)
	}
}
