package mq

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire protocol: every frame is a 4-byte big-endian length followed by
// the payload. Request payloads start with a 1-byte opcode.
//
//	PRODUCE:  op, topic, u32 count, count × message
//	FETCH:    op, topic, i64 offset, u32 max, u32 waitMillis
//	END:      op, topic
//	TOPICS:   op
//
// Responses: u8 status (0 ok, 1 error), then op-specific body.
// Strings are u16 length + bytes; messages u32 length + bytes.
const (
	opProduce = 1
	opFetch   = 2
	opEnd     = 3
	opTopics  = 4
)

const maxFrame = 64 << 20

// ErrProtocol reports a malformed frame.
var ErrProtocol = errors.New("mq: protocol error")

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, ErrProtocol
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, ErrProtocol
	}
	n := int(binary.BigEndian.Uint16(buf))
	if len(buf) < 2+n {
		return "", nil, ErrProtocol
	}
	return string(buf[2 : 2+n]), buf[2+n:], nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func readBytes(buf []byte) ([]byte, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, ErrProtocol
	}
	n := int(binary.BigEndian.Uint32(buf))
	if n > maxFrame || len(buf) < 4+n {
		return nil, nil, ErrProtocol
	}
	return buf[4 : 4+n], buf[4+n:], nil
}

// Server exposes a Broker over TCP.
type Server struct {
	Broker *Broker

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer wraps a broker.
func NewServer(b *Broker) *Server {
	return &Server{Broker: b, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr ("127.0.0.1:0" for an
// ephemeral test port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("mq: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		req, err := readFrame(br)
		if err != nil {
			return
		}
		resp := s.handle(req)
		if err := writeFrame(bw, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func errResp(msg string) []byte {
	out := []byte{1}
	return appendString(out, msg)
}

func (s *Server) handle(req []byte) []byte {
	if len(req) < 1 {
		return errResp("empty request")
	}
	op, body := req[0], req[1:]
	switch op {
	case opProduce:
		topic, rest, err := readString(body)
		if err != nil {
			return errResp("bad produce")
		}
		if len(rest) < 4 {
			return errResp("bad produce count")
		}
		count := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		msgs := make([][]byte, 0, count)
		for i := 0; i < count; i++ {
			var m []byte
			m, rest, err = readBytes(rest)
			if err != nil {
				return errResp("bad produce message")
			}
			msgs = append(msgs, m)
		}
		base := s.Broker.Produce(topic, msgs...)
		out := []byte{0}
		return binary.BigEndian.AppendUint64(out, uint64(base))
	case opFetch:
		topic, rest, err := readString(body)
		if err != nil || len(rest) < 16 {
			return errResp("bad fetch")
		}
		offset := int64(binary.BigEndian.Uint64(rest))
		max := int(binary.BigEndian.Uint32(rest[8:]))
		waitMs := int(binary.BigEndian.Uint32(rest[12:]))
		var msgs [][]byte
		var next int64
		if waitMs > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(waitMs)*time.Millisecond)
			msgs, next, _ = s.Broker.FetchWait(ctx, topic, offset, max)
			if msgs == nil {
				next = offset
			}
			cancel()
		} else {
			msgs, next = s.Broker.Fetch(topic, offset, max)
		}
		out := []byte{0}
		out = binary.BigEndian.AppendUint64(out, uint64(next))
		out = binary.BigEndian.AppendUint32(out, uint32(len(msgs)))
		for _, m := range msgs {
			out = appendBytes(out, m)
		}
		return out
	case opEnd:
		topic, _, err := readString(body)
		if err != nil {
			return errResp("bad end")
		}
		out := []byte{0}
		return binary.BigEndian.AppendUint64(out, uint64(s.Broker.EndOffset(topic)))
	case opTopics:
		names := s.Broker.Topics()
		out := []byte{0}
		out = binary.BigEndian.AppendUint32(out, uint32(len(names)))
		for _, n := range names {
			out = appendString(out, n)
		}
		return out
	default:
		return errResp("unknown op")
	}
}

// Client is a TCP client for a remote broker. It is safe for
// sequential use; guard with a mutex (or use one per goroutine) for
// concurrency.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a broker server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("mq: dial: %w", err)
	}
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.bw, req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.br)
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 {
		return nil, ErrProtocol
	}
	if resp[0] != 0 {
		msg, _, _ := readString(resp[1:])
		return nil, fmt.Errorf("mq: server error: %s", msg)
	}
	return resp[1:], nil
}

// Produce appends messages to a remote topic.
func (c *Client) Produce(topic string, msgs ...[]byte) (int64, error) {
	req := []byte{opProduce}
	req = appendString(req, topic)
	req = binary.BigEndian.AppendUint32(req, uint32(len(msgs)))
	for _, m := range msgs {
		req = appendBytes(req, m)
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return 0, err
	}
	if len(resp) < 8 {
		return 0, ErrProtocol
	}
	return int64(binary.BigEndian.Uint64(resp)), nil
}

// Fetch retrieves up to max messages from offset; wait > 0 blocks up
// to that duration for new data.
func (c *Client) Fetch(topic string, offset int64, max int, wait time.Duration) ([][]byte, int64, error) {
	req := []byte{opFetch}
	req = appendString(req, topic)
	req = binary.BigEndian.AppendUint64(req, uint64(offset))
	req = binary.BigEndian.AppendUint32(req, uint32(max))
	req = binary.BigEndian.AppendUint32(req, uint32(wait/time.Millisecond))
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, offset, err
	}
	if len(resp) < 12 {
		return nil, offset, ErrProtocol
	}
	next := int64(binary.BigEndian.Uint64(resp))
	count := int(binary.BigEndian.Uint32(resp[8:]))
	rest := resp[12:]
	msgs := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		var m []byte
		m, rest, err = readBytes(rest)
		if err != nil {
			return nil, offset, err
		}
		msgs = append(msgs, append([]byte(nil), m...))
	}
	return msgs, next, nil
}

// EndOffset returns the remote topic's end offset.
func (c *Client) EndOffset(topic string) (int64, error) {
	req := []byte{opEnd}
	req = appendString(req, topic)
	resp, err := c.roundTrip(req)
	if err != nil {
		return 0, err
	}
	if len(resp) < 8 {
		return 0, ErrProtocol
	}
	return int64(binary.BigEndian.Uint64(resp)), nil
}

// Topics lists remote topic names.
func (c *Client) Topics() ([]string, error) {
	resp, err := c.roundTrip([]byte{opTopics})
	if err != nil {
		return nil, err
	}
	if len(resp) < 4 {
		return nil, ErrProtocol
	}
	count := int(binary.BigEndian.Uint32(resp))
	rest := resp[4:]
	out := make([]string, 0, count)
	for i := 0; i < count; i++ {
		var s string
		s, rest, err = readString(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
