package mq

import (
	"net/netip"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/rtables"
)

// TestRTPublisherOverTCP runs the §6.2 producer path across process
// boundaries: the RT publisher produces through a TCP client into a
// remote broker, and a consumer-side fetch reconstructs the batches.
func TestRTPublisherOverTCP(t *testing.T) {
	b := NewBroker()
	srv := NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	producerConn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer producerConn.Close()
	pub := &RTPublisher{Producer: producerConn}

	bin := time.Unix(3000, 0)
	diffs := []rtables.Diff{
		{
			VP:        rtables.VPKey{Collector: "rrc00", Addr: netip.MustParseAddr("192.0.2.10"), ASN: 64501},
			Prefix:    netip.MustParsePrefix("10.0.0.0/8"),
			Announced: true,
			Path:      "64501 701 3356",
			NextHop:   netip.MustParseAddr("192.0.2.1"),
			Timestamp: 3000,
		},
	}
	for i := 0; i < 3; i++ {
		if err := pub.PublishDiffs("rrc00", bin.Add(time.Duration(i)*5*time.Minute), diffs); err != nil {
			t.Fatal(err)
		}
	}

	// Consumer side: fetch over its own TCP connection.
	consumerConn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer consumerConn.Close()

	metaMsgs, _, err := consumerConn.Fetch(MetaTopic, 0, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(metaMsgs) != 3 {
		t.Fatalf("meta messages: %d", len(metaMsgs))
	}
	for i, raw := range metaMsgs {
		meta, err := DecodeMeta(raw)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Collector != "rrc00" || meta.Offset != int64(i) {
			t.Fatalf("meta %d: %+v", i, meta)
		}
		batchRaw, _, err := consumerConn.Fetch(DiffTopic("rrc00"), meta.Offset, 1, 0)
		if err != nil || len(batchRaw) != 1 {
			t.Fatalf("batch fetch %d: %v %d", i, err, len(batchRaw))
		}
		batch, err := DecodeDiffBatch(batchRaw[0])
		if err != nil {
			t.Fatal(err)
		}
		if batch.BinStart != bin.Add(time.Duration(i)*5*time.Minute).Unix() {
			t.Errorf("batch %d bin: %d", i, batch.BinStart)
		}
		if len(batch.Diffs) != 1 || batch.Diffs[0].Path != "64501 701 3356" {
			t.Errorf("batch %d diffs: %+v", i, batch.Diffs)
		}
		if batch.Diffs[0].VP.Addr != netip.MustParseAddr("192.0.2.10") {
			t.Errorf("netip survived gob+tcp wrong: %v", batch.Diffs[0].VP.Addr)
		}
	}
}
