package mq

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/rtables"
)

// Topic layout of the §6.2 pipeline: one diff topic per collector,
// plus a shared meta-data topic watched by sync servers.
const (
	// MetaTopic carries lightweight per-bin indexing meta-data.
	MetaTopic = "rt.meta"
)

// DiffTopic returns the diff/snapshot topic for a collector.
func DiffTopic(collector string) string { return "rt.diffs." + collector }

// DiffBatch is the unit stored in a collector's diff topic: either
// the changed cells of one time bin or a full snapshot.
type DiffBatch struct {
	Collector string
	BinStart  int64
	Snapshot  bool
	Diffs     []rtables.Diff
}

// MetaMsg is the lightweight index record stored in MetaTopic for
// every published batch; sync servers watch only these (§6.2.3:
// "sync servers only handle lightweight meta-data").
type MetaMsg struct {
	Collector string
	BinStart  int64
	Snapshot  bool
	Count     int
	// Offset locates the batch in the collector's diff topic.
	Offset int64
}

// EncodeDiffBatch serialises a batch with gob.
func EncodeDiffBatch(b *DiffBatch) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, fmt.Errorf("mq: encode diff batch: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeDiffBatch deserialises a batch.
func DecodeDiffBatch(data []byte) (*DiffBatch, error) {
	var b DiffBatch
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return nil, fmt.Errorf("mq: decode diff batch: %w", err)
	}
	return &b, nil
}

// EncodeMeta serialises a meta message.
func EncodeMeta(m *MetaMsg) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("mq: encode meta: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeMeta deserialises a meta message.
func DecodeMeta(data []byte) (*MetaMsg, error) {
	var m MetaMsg
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, fmt.Errorf("mq: decode meta: %w", err)
	}
	return &m, nil
}

// Producer abstracts produce access for the RT publisher: the
// embedded Broker (via LocalProducer) or a TCP Client.
type Producer interface {
	Produce(topic string, msgs ...[]byte) (int64, error)
}

// LocalProducer adapts an embedded Broker to the Producer interface.
type LocalProducer struct {
	Broker *Broker
}

// Produce implements Producer.
func (p LocalProducer) Produce(topic string, msgs ...[]byte) (int64, error) {
	return p.Broker.Produce(topic, msgs...), nil
}

var _ Producer = (*Client)(nil)

// RTPublisher bridges the RT plugin to the message bus, implementing
// rtables.Publisher: diff batches go to the collector's topic, a meta
// record to MetaTopic.
type RTPublisher struct {
	Producer Producer
}

var _ rtables.Publisher = (*RTPublisher)(nil)

func (p *RTPublisher) publish(collector string, binStart time.Time, diffs []rtables.Diff, snapshot bool) error {
	batch := &DiffBatch{
		Collector: collector,
		BinStart:  binStart.Unix(),
		Snapshot:  snapshot,
		Diffs:     diffs,
	}
	data, err := EncodeDiffBatch(batch)
	if err != nil {
		return err
	}
	offset, err := p.Producer.Produce(DiffTopic(collector), data)
	if err != nil {
		return err
	}
	meta, err := EncodeMeta(&MetaMsg{
		Collector: collector,
		BinStart:  batch.BinStart,
		Snapshot:  snapshot,
		Count:     len(diffs),
		Offset:    offset,
	})
	if err != nil {
		return err
	}
	_, err = p.Producer.Produce(MetaTopic, meta)
	return err
}

// PublishDiffs implements rtables.Publisher.
func (p *RTPublisher) PublishDiffs(collector string, binStart time.Time, diffs []rtables.Diff) error {
	return p.publish(collector, binStart, diffs, false)
}

// PublishSnapshot implements rtables.Publisher.
func (p *RTPublisher) PublishSnapshot(collector string, binStart time.Time, cells []rtables.Diff) error {
	return p.publish(collector, binStart, cells, true)
}
