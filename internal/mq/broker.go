// Package mq is the distributed-messaging substrate of the §6.2
// monitoring architecture — the stand-in for Apache Kafka. It
// provides named, offset-addressed, append-only message logs
// (topics), an embedded broker for in-process pipelines, and a
// length-prefixed binary TCP protocol so BGPCorsaro producers, sync
// servers and consumers can run as separate processes, mirroring the
// paper's deployment.
package mq

import (
	"context"
	"sort"
	"sync"
)

// Broker is an in-memory message broker: a set of topics, each an
// append-only log addressed by offset. The zero value is not usable;
// call NewBroker.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*topic
}

type topic struct {
	mu      sync.Mutex
	msgs    [][]byte
	waiters []chan struct{}
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{topics: make(map[string]*topic)}
}

func (b *Broker) topicFor(name string, create bool) *topic {
	b.mu.RLock()
	t := b.topics[name]
	b.mu.RUnlock()
	if t != nil || !create {
		return t
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t = b.topics[name]; t == nil {
		t = &topic{}
		b.topics[name] = t
	}
	return t
}

// Produce appends messages to a topic (created on first use) and
// returns the offset of the first appended message.
func (b *Broker) Produce(name string, msgs ...[]byte) int64 {
	t := b.topicFor(name, true)
	t.mu.Lock()
	base := int64(len(t.msgs))
	for _, m := range msgs {
		t.msgs = append(t.msgs, append([]byte(nil), m...))
	}
	waiters := t.waiters
	t.waiters = nil
	t.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	return base
}

// Fetch returns up to max messages starting at offset, plus the next
// offset to fetch. It never blocks; an empty result means the
// consumer is caught up.
func (b *Broker) Fetch(name string, offset int64, max int) ([][]byte, int64) {
	t := b.topicFor(name, false)
	if t == nil {
		return nil, offset
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if offset < 0 {
		offset = 0
	}
	if offset >= int64(len(t.msgs)) {
		return nil, offset
	}
	end := offset + int64(max)
	if max <= 0 || end > int64(len(t.msgs)) {
		end = int64(len(t.msgs))
	}
	out := make([][]byte, 0, end-offset)
	for _, m := range t.msgs[offset:end] {
		out = append(out, m)
	}
	return out, end
}

// FetchWait behaves like Fetch but blocks until at least one message
// is available past offset or the context is done.
func (b *Broker) FetchWait(ctx context.Context, name string, offset int64, max int) ([][]byte, int64, error) {
	for {
		t := b.topicFor(name, true)
		t.mu.Lock()
		if offset < int64(len(t.msgs)) {
			t.mu.Unlock()
			msgs, next := b.Fetch(name, offset, max)
			return msgs, next, nil
		}
		w := make(chan struct{})
		t.waiters = append(t.waiters, w)
		t.mu.Unlock()
		select {
		case <-w:
		case <-ctx.Done():
			return nil, offset, ctx.Err()
		}
	}
}

// EndOffset returns the offset one past the last message of the topic
// (0 for unknown topics).
func (b *Broker) EndOffset(name string) int64 {
	t := b.topicFor(name, false)
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(len(t.msgs))
}

// Topics lists existing topic names, sorted.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
