#!/bin/sh
# Runs the perf-trajectory benches — ingest throughput (sequential vs
# parallel pipeline), live fan-out, compiled-filter matching — and
# renders the results as JSON so every PR leaves a comparable
# baseline (BENCH_5.json was generated this way; CI runs the same
# script as a non-gating smoke step).
#
# Usage:  sh scripts/bench.sh [out.json]
# Env:    BENCHTIME  go test -benchtime value (default 1s)
#         CPUS       go test -cpu list        (default 1,4)
set -eu

out="${1:-BENCH_5.json}"
benchtime="${BENCHTIME:-1s}"
cpus="${CPUS:-1,4}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
  -bench 'StreamThroughput|RISLiveFanout|FilterMatchElem' \
  -benchmem -benchtime "$benchtime" -cpu "$cpus" . | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v benchtime="$benchtime" -v cpus="$cpus" '
BEGIN {
	printf "{\n  \"generated\": \"%s\",\n", date
	printf "  \"benchtime\": \"%s\",\n  \"cpu_counts\": \"%s\",\n", benchtime, cpus
	printf "  \"benchmarks\": ["
	first = 1
}
/^Benchmark/ && NF >= 4 {
	if (!first) printf ","
	first = 0
	printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", $1, $2
	m = 0
	for (i = 3; i < NF; i += 2) {
		if (m) printf ", "
		printf "\"%s\": %s", $(i + 1), $i
		m = 1
	}
	printf "}}"
}
/^cpu:/ { sub(/^cpu: /, ""); cpu_model = $0 }
END {
	printf "\n  ],\n  \"cpu_model\": \"%s\"\n}\n", cpu_model
}' "$tmp" > "$out"

echo "wrote $out"
