#!/bin/sh
# Runs the perf-trajectory benches — ingest throughput (sequential vs
# parallel pipeline), live fan-out (now up to 65536 in-process
# subscribers, reporting p99 publish latency), compiled-filter
# matching, and the metrics hot path — and renders the results as JSON
# so every PR leaves a comparable baseline (BENCH_9.json was generated
# this way; BENCH_8.json is the pre-decoder-arena baseline; CI runs
# the same script as a non-gating smoke step).
#
# Two results gate (exit 1 on regression):
#   - BenchmarkObsvHotPath must stay at 0 allocs/op: one metrics
#     update per elem per layer means an allocation here taxes every
#     stream in the process.
#   - BenchmarkStreamThroughput{,Sequential} allocs/elem must stay
#     <= 2.0 on the GOMAXPROCS=1 runs, locking in the decode-stack
#     ownership refactor (the per-reader bgp.Decoder arenas cut the
#     BENCH_8.json baseline of 4.868 to ~0.22). Only the unsuffixed
#     (single-proc) runs gate: multi-proc runs jitter with scheduling.
#     The resilient-fetch layer (internal/resilience: retry policy,
#     resume bookkeeping, breaker checks) sits on this path and is
#     compiled in; the gate proves it stays off the per-elem budget.
#
# Usage:  sh scripts/bench.sh [out.json]
# Env:    BENCHTIME  go test -benchtime value (default 1s)
#         CPUS       go test -cpu list        (default 1,4)
set -eu

out="${1:-BENCH_9.json}"
benchtime="${BENCHTIME:-1s}"
cpus="${CPUS:-1,4}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# -timeout 0: the full fan-out ladder (to 65536 subscribers) runs well
# past go test's default 10-minute per-binary timeout on small boxes.
go test -run '^$' \
  -bench 'StreamThroughput|RISLiveFanout|FilterMatchElem|ObsvHotPath' \
  -benchmem -benchtime "$benchtime" -cpu "$cpus" -timeout 0 . | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v benchtime="$benchtime" -v cpus="$cpus" \
    -v gomaxprocs="${GOMAXPROCS:-$(nproc)}" -v numcpu="$(nproc)" '
BEGIN {
	printf "{\n  \"generated\": \"%s\",\n", date
	printf "  \"benchtime\": \"%s\",\n  \"cpu_counts\": \"%s\",\n", benchtime, cpus
	printf "  \"gomaxprocs\": %s,\n  \"num_cpu\": %s,\n", gomaxprocs, numcpu
	printf "  \"benchmarks\": ["
	first = 1
}
/^Benchmark/ && NF >= 4 {
	if (!first) printf ","
	first = 0
	printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", $1, $2
	m = 0
	for (i = 3; i < NF; i += 2) {
		if (m) printf ", "
		printf "\"%s\": %s", $(i + 1), $i
		m = 1
	}
	printf "}}"
}
/^cpu:/ { sub(/^cpu: /, ""); cpu_model = $0 }
END {
	printf "\n  ],\n  \"cpu_model\": \"%s\"\n}\n", cpu_model
}' "$tmp" > "$out"

echo "wrote $out"

# Perf gates (see header). Metric values precede their unit in go test
# output, so scan field pairs for the unit and read the field before.
# Each gate tracks whether its benchmark (and metric) appeared at all:
# a renamed or dropped benchmark must fail the gate loudly instead of
# silently gating nothing.
awk '
function metric(unit,   i) {
	for (i = 3; i < NF; i++) if ($(i + 1) == unit) return $i
	return ""
}
/^BenchmarkObsvHotPath/ {
	seen_obsv = 1
	v = metric("allocs/op")
	if (v == "") {
		printf "GATE FAIL: %s has no allocs/op metric (run with -benchmem)\n", $1
		fail = 1
	} else if (v + 0 != 0) {
		printf "GATE FAIL: %s allocates (%s allocs/op, want 0)\n", $1, v
		fail = 1
	}
}
/^BenchmarkStreamThroughput(Sequential)?[ \t]/ {
	seen_stream = 1
	v = metric("allocs/elem")
	if (v == "") {
		printf "GATE FAIL: %s has no allocs/elem metric (ReportMetric dropped?)\n", $1
		fail = 1
	} else if (v + 0 > 2.0) {
		printf "GATE FAIL: %s allocs/elem %s > 2.0 (decoder-arena baseline ~0.22; pre-refactor BENCH_8.json was 4.868)\n", $1, v
		fail = 1
	}
}
END {
	if (!seen_obsv) {
		print "GATE FAIL: BenchmarkObsvHotPath missing from bench output; its 0 allocs/op gate did not run"
		fail = 1
	}
	if (!seen_stream) {
		print "GATE FAIL: BenchmarkStreamThroughput missing from bench output; its allocs/elem gate did not run"
		fail = 1
	}
	exit fail
}
' "$tmp" || { echo "bench gates failed" >&2; exit 1; }
echo "bench gates passed (ObsvHotPath 0 allocs/op, StreamThroughput allocs/elem <= 2.0)"
