#!/bin/sh
# check-pkg-docs.sh — fail the build when a package lacks a package
# doc comment ("// Package <name> ..."). Architecture documentation is
# a build artifact here: every internal package must say what it
# implements and, where applicable, which paper section it reproduces.
#
# Usage: scripts/check-pkg-docs.sh  (from the repository root)
set -eu

status=0
for dir in internal/*/ .; do
    # Package name = directory basename; the root package is "bgpstream".
    if [ "$dir" = "." ]; then
        pkg=bgpstream
    else
        pkg=$(basename "$dir")
    fi
    found=0
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in *_test.go) continue ;; esac
        if grep -q "^// Package $pkg " "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "missing package doc comment: $dir (want '// Package $pkg ...')" >&2
        status=1
    fi
done
exit $status
