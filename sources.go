package bgpstream

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/broker"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/gaprepair"
	"github.com/bgpstream-go/bgpstream/internal/resilience"
	"github.com/bgpstream-go/bgpstream/internal/rislive"
)

// SourceOptions carries per-source configuration as string key/value
// pairs, mirroring the C API's bgpstream_set_data_interface_option.
// Every option a source supports is listed in its SourceInfo; unknown
// keys are rejected by OpenSource.
type SourceOptions map[string]string

// SourceOption documents one option a registered source accepts.
type SourceOption struct {
	Name        string
	Description string
	// Default is the rendered default value ("" when none).
	Default string
	// Required marks options OpenSource refuses to proceed without.
	Required bool
}

// SourceInfo describes a registered source, the Go form of the C
// API's bgpstream_data_interface_info.
type SourceInfo struct {
	// Name is the registry key ("broker", "directory", ...).
	Name        string
	Description string
	// Kind is "pull" (dump-file meta-data, minutes-latency) or "push"
	// (per-elem messages, milliseconds-latency).
	Kind    string
	Options []SourceOption
	// Health lists the open streams built from this source, attached
	// by Sources at call time (always empty at registration). Streams
	// opened through WithSourceInstance carry no source name and
	// appear only in ActiveSources.
	Health []SourceHealth `json:",omitempty"`
}

// SourceFactory builds a Source from validated options. Factories
// should validate option values eagerly and defer only the
// filter-dependent construction to the returned Source's OpenStream.
type SourceFactory func(opts SourceOptions) (Source, error)

type sourceRegistration struct {
	info    SourceInfo
	factory SourceFactory
}

var sourceRegistry = struct {
	sync.RWMutex
	m map[string]sourceRegistration
}{m: map[string]sourceRegistration{}}

// RegisterSource adds a named source to the registry (replacing any
// previous registration of the same name), making it reachable from
// OpenSource and Open(WithSource(...)). The built-in sources register
// themselves at init; embedders add their own transports the same way.
func RegisterSource(info SourceInfo, factory SourceFactory) {
	if info.Name == "" || factory == nil {
		panic("bgpstream: RegisterSource needs a name and a factory")
	}
	sourceRegistry.Lock()
	defer sourceRegistry.Unlock()
	sourceRegistry.m[info.Name] = sourceRegistration{info: info, factory: factory}
}

// Sources lists every registered source sorted by name, the Go form
// of bgpstream_get_data_interfaces, with the health of any open
// streams attached per source (see SourceInfo.Health).
func Sources() []SourceInfo {
	sourceRegistry.RLock()
	out := make([]SourceInfo, 0, len(sourceRegistry.m))
	for _, reg := range sourceRegistry.m {
		out = append(out, reg.info)
	}
	sourceRegistry.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	byName := make(map[string][]SourceHealth)
	for _, h := range core.ActiveSourceHealth() {
		if h.Source != "" {
			byName[h.Source] = append(byName[h.Source], h)
		}
	}
	for i := range out {
		out[i].Health = byName[out[i].Name]
	}
	return out
}

// OpenSource builds the named source from the registry with the given
// options. Unknown source names, unknown option keys, and missing
// required options are errors that name the valid alternatives. The
// returned Source binds filters when opened (directly via OpenStream,
// or through Open).
func OpenSource(name string, opts SourceOptions) (Source, error) {
	sourceRegistry.RLock()
	reg, ok := sourceRegistry.m[name]
	sourceRegistry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("bgpstream: unknown source %q (registered: %s)",
			name, strings.Join(sourceNames(), ", "))
	}
	valid := make(map[string]bool, len(reg.info.Options))
	var optNames, prefixes []string
	for _, o := range reg.info.Options {
		valid[o.Name] = true
		optNames = append(optNames, o.Name)
		// An option named "live.*" accepts any "live."-prefixed key;
		// composite sources use this to forward options to the
		// sources they wrap.
		if strings.HasSuffix(o.Name, ".*") {
			prefixes = append(prefixes, strings.TrimSuffix(o.Name, "*"))
		}
	}
	for k := range opts {
		if valid[k] || matchesPrefix(k, prefixes) {
			continue
		}
		return nil, fmt.Errorf("bgpstream: source %q has no option %q (options: %s)",
			name, k, strings.Join(optNames, ", "))
	}
	for _, o := range reg.info.Options {
		if o.Required && opts[o.Name] == "" {
			return nil, fmt.Errorf("bgpstream: source %q requires option %q (%s)",
				name, o.Name, o.Description)
		}
	}
	return reg.factory(opts)
}

func matchesPrefix(key string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(key, p) && len(key) > len(p) {
			return true
		}
	}
	return false
}

// subOptions extracts the options under one composite prefix
// ("live." → {"live.url": v} becomes {"url": v}).
func subOptions(opts SourceOptions, prefix string) SourceOptions {
	sub := SourceOptions{}
	for k, v := range opts {
		if strings.HasPrefix(k, prefix) && len(k) > len(prefix) {
			sub[strings.TrimPrefix(k, prefix)] = v
		}
	}
	return sub
}

func sourceNames() []string {
	sourceRegistry.RLock()
	defer sourceRegistry.RUnlock()
	names := make([]string, 0, len(sourceRegistry.m))
	for n := range sourceRegistry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// optInt parses an optional integer-valued option; missing or empty
// means def.
func optInt(name string, opts SourceOptions, key string, def int) (int, error) {
	v := opts[key]
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bgpstream: source %q option %q: bad count %q", name, key, v)
	}
	return n, nil
}

// optDuration parses an optional duration-valued option ("10s",
// "1m30s"); missing or empty means def.
func optDuration(name string, opts SourceOptions, key string, def time.Duration) (time.Duration, error) {
	v := opts[key]
	if v == "" {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("bgpstream: source %q option %q: bad duration %q", name, key, v)
	}
	return d, nil
}

// pipelineOptions are the parallel-ingest options every pull source
// accepts, mirroring WithDecodeWorkers / WithReadahead.
var pipelineOptions = []SourceOption{
	{Name: "decode-workers", Description: "parallel ingest: dump files of an overlap partition decoded concurrently (1 = sequential)", Default: "GOMAXPROCS"},
	{Name: "readahead", Description: "per-dump-file decoded-record readahead bound", Default: "4096"},
}

// pipelineOpts parses the shared parallel-ingest options of a pull
// source.
func pipelineOpts(name string, opts SourceOptions) (workers, readahead int, err error) {
	if workers, err = optInt(name, opts, "decode-workers", 0); err != nil {
		return 0, 0, err
	}
	if readahead, err = optInt(name, opts, "readahead", 0); err != nil {
		return 0, 0, err
	}
	return workers, readahead, nil
}

// resilienceOptions are the fault-tolerance options every pull source
// accepts, mirroring Stream.SetFetchPolicy / SetBreakerThreshold.
var resilienceOptions = []SourceOption{
	{Name: "retry", Description: "fetch attempts per transient network failure (dump open/resume, broker query)", Default: "3"},
	{Name: "retry-backoff", Description: "delay before the second fetch attempt, doubled per retry with jitter", Default: "250ms"},
	{Name: "breaker-threshold", Description: "consecutive per-host fetch failures that open the circuit breaker (0 disables)", Default: "5"},
}

// resilienceOpts parses the shared fault-tolerance options of a pull
// source. set reports whether any of them was given explicitly; when
// false the stream keeps its zero-value (default) fetch behaviour.
func resilienceOpts(name string, opts SourceOptions) (pol resilience.Policy, threshold int, set bool, err error) {
	if v := opts["retry"]; v != "" {
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n < 1 {
			return pol, 0, false, fmt.Errorf("bgpstream: source %q option %q: bad attempt count %q", name, "retry", v)
		}
		pol.MaxAttempts, set = n, true
	}
	backoff, err := optDuration(name, opts, "retry-backoff", 0)
	if err != nil {
		return pol, 0, false, err
	}
	if backoff > 0 {
		pol.Backoff, set = backoff, true
	}
	if v := opts["breaker-threshold"]; v != "" {
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n < 0 {
			return pol, 0, false, fmt.Errorf("bgpstream: source %q option %q: bad threshold %q", name, "breaker-threshold", v)
		}
		if n == 0 {
			threshold = -1 // the stream API uses negative for "disabled"
		} else {
			threshold = n
		}
		set = true
	}
	return pol, threshold, set, nil
}

// pullPipelined wraps a pull data interface as a Source applying the
// shared parallel-ingest and fault-tolerance options at stream
// construction.
func pullPipelined(name string, opts SourceOptions, di core.DataInterface) (Source, error) {
	workers, readahead, err := pipelineOpts(name, opts)
	if err != nil {
		return nil, err
	}
	pol, threshold, rset, err := resilienceOpts(name, opts)
	if err != nil {
		return nil, err
	}
	if workers == 0 && readahead == 0 && !rset {
		return PullSource(di), nil
	}
	return core.SourceFunc(func(ctx context.Context, f Filters) (*Stream, error) {
		s := core.NewStream(ctx, di, f)
		s.SetDecodeWorkers(workers)
		s.SetReadahead(readahead)
		if rset {
			s.SetFetchPolicy(pol)
			s.SetBreakerThreshold(threshold)
		}
		return s, nil
	}), nil
}

// The built-in sources, mirroring the data interfaces of the C API
// (§3.2: broker, single file, CSV file, local directory) plus the
// push-based rislive transport of PR 1.
func init() {
	RegisterSource(SourceInfo{
		Name:        "broker",
		Description: "BGPStream Broker meta-data service (the default way to consume public archives)",
		Kind:        "pull",
		Options: append(append([]SourceOption{
			{Name: "url", Description: "broker service root, e.g. http://localhost:8472", Required: true},
			{Name: "poll", Description: "live-mode polling period", Default: "10s"},
			{Name: "window", Description: "override the broker's response window", Default: "broker-chosen"},
		}, pipelineOptions...), resilienceOptions...),
	}, func(opts SourceOptions) (Source, error) {
		poll, err := optDuration("broker", opts, "poll", 0)
		if err != nil {
			return nil, err
		}
		window, err := optDuration("broker", opts, "window", 0)
		if err != nil {
			return nil, err
		}
		workers, readahead, err := pipelineOpts("broker", opts)
		if err != nil {
			return nil, err
		}
		pol, threshold, rset, err := resilienceOpts("broker", opts)
		if err != nil {
			return nil, err
		}
		url := opts["url"]
		return core.SourceFunc(func(ctx context.Context, f Filters) (*Stream, error) {
			c := broker.NewClient(url, f)
			if poll > 0 {
				c.PollInterval = poll
			}
			c.Window = window
			if rset {
				// The same policy governs meta-data queries and dump
				// fetches: one knob for the whole network edge.
				c.Retry = pol
			}
			s := core.NewStream(ctx, c, f)
			s.SetDecodeWorkers(workers)
			s.SetReadahead(readahead)
			if rset {
				s.SetFetchPolicy(pol)
				s.SetBreakerThreshold(threshold)
			}
			return s, nil
		}), nil
	})

	RegisterSource(SourceInfo{
		Name:        "directory",
		Description: "local archive tree in the collector-project on-disk layout",
		Kind:        "pull",
		Options: append(append([]SourceOption{
			{Name: "path", Description: "archive root directory", Required: true},
		}, pipelineOptions...), resilienceOptions...),
	}, func(opts SourceOptions) (Source, error) {
		return pullPipelined("directory", opts, &core.Directory{Dir: opts["path"]})
	})

	RegisterSource(SourceInfo{
		Name:        "csvfile",
		Description: "CSV dump index: project,collector,type,unix_start,duration_seconds,url per line",
		Kind:        "pull",
		Options: append(append([]SourceOption{
			{Name: "path", Description: "CSV index file", Required: true},
		}, pipelineOptions...), resilienceOptions...),
	}, func(opts SourceOptions) (Source, error) {
		return pullPipelined("csvfile", opts, &core.CSVFile{Path: opts["path"]})
	})

	RegisterSource(SourceInfo{
		Name:        "singlefile",
		Description: "explicit dump files, no meta-data service (the C API's single-file interface)",
		Kind:        "pull",
		Options: append(append([]SourceOption{
			{Name: "rib-file", Description: "path or URL of a RIB dump (this or upd-file is required)"},
			{Name: "upd-file", Description: "path or URL of an updates dump (this or rib-file is required)"},
			{Name: "project", Description: "project annotation on the records", Default: "singlefile"},
			{Name: "collector", Description: "collector annotation on the records", Default: "singlefile"},
			{Name: "time", Description: "nominal dump start, unix seconds (zero = unknown: the dump always passes interval meta-filtering and records are time-filtered individually)", Default: "0"},
			{Name: "duration", Description: "nominal dump duration, e.g. 8h", Default: "0s"},
		}, pipelineOptions...), resilienceOptions...),
	}, func(opts SourceOptions) (Source, error) {
		if opts["rib-file"] == "" && opts["upd-file"] == "" {
			return nil, fmt.Errorf(`bgpstream: source "singlefile" requires option "rib-file" or "upd-file"`)
		}
		project, collector := opts["project"], opts["collector"]
		if project == "" {
			project = "singlefile"
		}
		if collector == "" {
			collector = "singlefile"
		}
		var ts time.Time
		if v := opts["time"]; v != "" && v != "0" {
			sec, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf(`bgpstream: source "singlefile" option "time": bad unix seconds %q`, v)
			}
			ts = time.Unix(sec, 0).UTC()
		}
		dur, err := optDuration("singlefile", opts, "duration", 0)
		if err != nil {
			return nil, err
		}
		var metas []DumpMeta
		if u := opts["rib-file"]; u != "" {
			metas = append(metas, archive.DumpMeta{
				Project: project, Collector: collector, Type: DumpRIB,
				Time: ts, Duration: dur, URL: u,
			})
		}
		if u := opts["upd-file"]; u != "" {
			metas = append(metas, archive.DumpMeta{
				Project: project, Collector: collector, Type: DumpUpdates,
				Time: ts, Duration: dur, URL: u,
			})
		}
		return pullPipelined("singlefile", opts, &core.SingleFiles{Metas: metas})
	})

	RegisterSource(SourceInfo{
		Name:        "rislive",
		Description: "RIS Live-style push feed (bgplivesrv, rislive.Server) over SSE or WebSocket; millisecond latency",
		Kind:        "push",
		Options: []SourceOption{
			{Name: "url", Description: "feed endpoint, e.g. http://localhost:8481/v1/stream or ws://localhost:8481/v1/ws", Required: true},
			{Name: "transport", Description: `wire framing: "sse", "ws", or "" to pick by URL scheme (ws/wss connect over WebSocket)`},
			{Name: "stale", Description: "reconnect when messages lag the clock by this much (0 disables)", Default: "0s"},
			{Name: "backoff", Description: "initial reconnect delay, doubled per consecutive failure", Default: "500ms"},
			{Name: "log", Description: `"stderr" surfaces connection lifecycle logs`},
		},
	}, func(opts SourceOptions) (Source, error) {
		stale, err := optDuration("rislive", opts, "stale", 0)
		if err != nil {
			return nil, err
		}
		backoff, err := optDuration("rislive", opts, "backoff", 0)
		if err != nil {
			return nil, err
		}
		switch opts["transport"] {
		case rislive.TransportAuto, rislive.TransportSSE, rislive.TransportWS:
		default:
			return nil, fmt.Errorf(`bgpstream: source "rislive" option "transport": want "sse", "ws", or empty, got %q`, opts["transport"])
		}
		switch opts["log"] {
		case "", "stderr":
		default:
			return nil, fmt.Errorf(`bgpstream: source "rislive" option "log": want "stderr", got %q`, opts["log"])
		}
		url, transport, logDest := opts["url"], opts["transport"], opts["log"]
		return core.SourceFunc(func(ctx context.Context, f Filters) (*Stream, error) {
			// The subscription pushes the server-enforceable dimensions
			// upstream; the stream re-applies every filter locally, so
			// its configuration stays authoritative.
			c := rislive.NewClient(url, rislive.SubscriptionFromFilters(f))
			c.Transport = transport
			c.Staleness = stale
			c.Backoff = backoff
			if logDest == "stderr" {
				c.Logf = log.Printf
			}
			return core.NewLiveStream(ctx, c, f), nil
		}), nil
	})

	RegisterSource(SourceInfo{
		Name: "repaired",
		Description: "gap-repaired composite: a push feed backfilled from an archive-class source " +
			"(push latency, pull completeness)",
		Kind: "push",
		Options: []SourceOption{
			{Name: "live", Description: "name of the push source to repair", Default: "rislive"},
			{Name: "backfill", Description: "name of the pull source gaps are backfilled from", Required: true},
			{Name: "live.*", Description: "options forwarded to the live source (live.url, ...)"},
			{Name: "backfill.*", Description: "options forwarded to the backfill source (backfill.url, backfill.path, ...)"},
			{Name: "holdback", Description: "max live elems buffered while a gap window closes", Default: "8192"},
			{Name: "timeout", Description: "per-attempt backfill fetch timeout", Default: "30s"},
			{Name: "concurrency", Description: "backfill fetches in flight at once", Default: "2"},
			{Name: "retries", Description: "fetch attempts per window before it is abandoned", Default: "3"},
			{Name: "retry-backoff", Description: "delay before the second fetch attempt, doubled per retry", Default: "500ms"},
			{Name: "poll", Description: "time-driven repair poll cadence (gap drain + quiet-feed splice checks)", Default: "1s"},
			{Name: "cursor", Description: "repair cursor file: persists the watermark and unrepaired windows so repairs survive restarts"},
			{Name: "log", Description: `"stderr" surfaces repair lifecycle logs`},
		},
	}, func(opts SourceOptions) (Source, error) {
		liveName := opts["live"]
		if liveName == "" {
			liveName = "rislive"
		}
		live, err := OpenSource(liveName, subOptions(opts, "live."))
		if err != nil {
			return nil, err
		}
		backfill, err := OpenSource(opts["backfill"], subOptions(opts, "backfill."))
		if err != nil {
			return nil, err
		}
		holdback, err := optInt("repaired", opts, "holdback", 0)
		if err != nil {
			return nil, err
		}
		timeout, err := optDuration("repaired", opts, "timeout", 0)
		if err != nil {
			return nil, err
		}
		concurrency, err := optInt("repaired", opts, "concurrency", 0)
		if err != nil {
			return nil, err
		}
		retries, err := optInt("repaired", opts, "retries", 0)
		if err != nil {
			return nil, err
		}
		retryBackoff, err := optDuration("repaired", opts, "retry-backoff", 0)
		if err != nil {
			return nil, err
		}
		poll, err := optDuration("repaired", opts, "poll", 0)
		if err != nil {
			return nil, err
		}
		var logf func(string, ...any)
		switch opts["log"] {
		case "":
		case "stderr":
			logf = log.Printf
		default:
			return nil, fmt.Errorf(`bgpstream: source "repaired" option "log": want "stderr", got %q`, opts["log"])
		}
		return &gaprepair.Composite{
			Live:     live,
			Backfill: backfill,
			Options: gaprepair.Options{
				HoldbackLimit: holdback,
				Timeout:       timeout,
				Concurrency:   concurrency,
				RetryMax:      retries,
				RetryBackoff:  retryBackoff,
				PollInterval:  poll,
				CursorPath:    opts["cursor"],
				Logf:          logf,
			},
		}, nil
	})
}
