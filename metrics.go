package bgpstream

import (
	"net/http"

	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/obsv"
)

// SourceHealth is the runtime view of one open stream: source name,
// kind, open time, data progress, and completeness counters. See
// ActiveSources.
type SourceHealth = core.SourceHealth

// ActiveSources snapshots the health of every open stream in the
// process. Streams register on Open (or any constructor) and
// unregister on Close; the facade's Open annotates them with the
// registry source name they were built from.
func ActiveSources() []SourceHealth {
	return core.ActiveSourceHealth()
}

// MetricsHandler returns the ops-plane HTTP handler over the
// process-wide metrics registry:
//
//	/metrics   Prometheus text exposition of every pipeline metric
//	/healthz   JSON liveness (uptime, goroutines, GOMAXPROCS, CPUs)
//	/sources   registered sources plus per-stream health
//	/debug/pprof/...   when pprof is true
//
// bgplivesrv mounts it beside the data plane; bgpreader serves it on
// -metrics-addr. Embedders can mount it on any mux.
func MetricsHandler(pprof bool) http.Handler {
	return obsv.Handler(obsv.Default, obsv.HandlerOptions{
		Sources: func() any {
			return map[string]any{
				"registered": Sources(),
				"active":     ActiveSources(),
			}
		},
		Health: func() map[string]any {
			return map[string]any{"active_streams": len(ActiveSources())}
		},
		Pprof: pprof,
	})
}
