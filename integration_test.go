package bgpstream_test

import (
	"context"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/astopo"
	"github.com/bgpstream-go/bgpstream/internal/broker"
	"github.com/bgpstream-go/bgpstream/internal/collector"
	"github.com/bgpstream-go/bgpstream/internal/core"

	bgpstream "github.com/bgpstream-go/bgpstream"
)

// TestLiveEndToEnd exercises the paper's headline capability over the
// full distributed stack: a route-collector simulator publishes dumps
// into an HTTP archive with publication delays; the Broker scrapes
// and indexes them; a live-mode stream blocks on the broker and
// receives records as virtual time advances — all over real HTTP and
// real MRT bytes.
func TestLiveEndToEnd(t *testing.T) {
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)

	// Generate 1 hour of data up front; the archive server's virtual
	// clock controls when each dump becomes visible.
	topo := astopo.Generate(astopo.DefaultParams(13))
	sim, err := collector.NewSimulator(collector.Config{
		Topo:              topo,
		Collectors:        collector.DefaultCollectors(topo, 4),
		ChurnFlapsPerHour: 40,
		Seed:              13,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := archive.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	metas, err := sim.GenerateArchive(store, start, start.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	total := len(metas)
	if total == 0 {
		t.Fatal("no dumps generated")
	}

	var mu sync.Mutex
	clock := start.Add(10 * time.Minute) // first few dumps published
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
	archSrv := httptest.NewServer(&archive.Server{
		Store:        store,
		PublishDelay: time.Minute,
		Now:          now,
	})
	defer archSrv.Close()

	brk := &broker.Server{
		Index: broker.NewIndex(),
		Providers: []broker.DataProvider{
			{Project: "ris", Mirrors: []string{archSrv.URL + "/ris/"}},
			{Project: "routeviews", Mirrors: []string{archSrv.URL + "/routeviews/"}},
		},
		Client: archSrv.Client(),
		Logf:   t.Logf,
	}
	if _, err := brk.Scrape(); err != nil {
		t.Fatal(err)
	}
	brkSrv := httptest.NewServer(brk)
	defer brkSrv.Close()

	filters := core.Filters{Live: true, Start: start}
	client := bgpstream.NewBrokerClient(brkSrv.URL, filters)
	client.HTTPClient = brkSrv.Client()
	client.PollInterval = 10 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stream := bgpstream.NewStream(ctx, client, filters)
	defer stream.Close()

	// Publisher loop: advance virtual time and re-scrape, simulating
	// the archive filling up while the consumer is live.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 60; i++ {
			advance(2 * time.Minute)
			if _, err := brk.Scrape(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(5 * time.Millisecond)
			if now().After(start.Add(80 * time.Minute)) {
				return
			}
		}
	}()

	records := 0
	invalid := 0
	var last time.Time
	for records < 200 {
		rec, err := stream.Next()
		if err == io.EOF {
			t.Fatal("live stream ended")
		}
		if err != nil {
			t.Fatalf("after %d records: %v", records, err)
		}
		if rec.Status != core.StatusValid {
			invalid++
			continue
		}
		if rec.Time().Before(last.Add(-archive.RIBSpan)) {
			// Live mode is best-effort interleaved (§3.1): ordering is
			// guaranteed within a broker response, and approximate
			// across polls. Large regressions indicate a real bug.
			t.Fatalf("record regressed too far: %v after %v", rec.Time(), last)
		}
		if rec.Time().After(last) {
			last = rec.Time()
		}
		records++
	}
	<-done
	if invalid > 0 {
		t.Errorf("%d invalid records over live HTTP", invalid)
	}
	if records < 200 {
		t.Fatalf("only %d records", records)
	}
}

// TestFacadeHistorical drives the public facade over a local archive,
// checking the exported surface works without touching internals
// beyond construction.
func TestFacadeHistorical(t *testing.T) {
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	topo := astopo.Generate(astopo.DefaultParams(14))
	sim, err := collector.NewSimulator(collector.Config{
		Topo:              topo,
		Collectors:        collector.DefaultCollectors(topo, 4),
		ChurnFlapsPerHour: 20,
		Seed:              14,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := archive.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.GenerateArchive(store, start, start.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	cf, err := bgpstream.ParseCommunityFilter("*:666")
	if err != nil {
		t.Fatal(err)
	}
	_ = cf
	filters := bgpstream.Filters{
		Projects:  []string{"ris"},
		DumpTypes: []bgpstream.DumpType{bgpstream.DumpRIB},
		ElemTypes: []bgpstream.ElemType{bgpstream.ElemRIB},
	}
	s := bgpstream.NewStream(context.Background(), &bgpstream.Directory{Dir: dir}, filters)
	defer s.Close()
	n := 0
	for {
		rec, elem, err := s.NextElem()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Project != "ris" || elem.Type != bgpstream.ElemRIB {
			t.Fatalf("filter leak: %s %s", rec.Project, elem.Type)
		}
		if elem.OriginASN() == 0 && len(elem.Origins()) == 0 {
			t.Fatal("elem without origin in RIB")
		}
		n++
	}
	if n == 0 {
		t.Fatal("no RIB elems through facade")
	}
}
