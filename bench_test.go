// Benchmarks regenerating every table and figure of the paper's
// evaluation (one per experiment; see DESIGN.md §3), plus ablation
// benches for the design decisions of DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem
//
// Figures are regenerated at reduced scale per iteration so -bench
// stays tractable; use cmd/experiments for full-scale runs.
package bgpstream_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/astopo"
	"github.com/bgpstream-go/bgpstream/internal/bgp"
	"github.com/bgpstream-go/bgpstream/internal/collector"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/experiments"
	"github.com/bgpstream-go/bgpstream/internal/gaprepair"
	"github.com/bgpstream-go/bgpstream/internal/merge"
	"github.com/bgpstream-go/bgpstream/internal/obsv"
	"github.com/bgpstream-go/bgpstream/internal/prefixtrie"
	"github.com/bgpstream-go/bgpstream/internal/rislive"
)

// benchExperiment runs one experiment per iteration at bench scale.
func benchExperiment(b *testing.B, id string, scale float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Config{Seed: 1, Scale: scale})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkTable1ElemExtraction(b *testing.B)  { benchExperiment(b, "table1", 1) }
func BenchmarkFig3SortedMerge(b *testing.B)       { benchExperiment(b, "fig3", 1) }
func BenchmarkSortingOverhead(b *testing.B)       { benchExperiment(b, "sorting-overhead", 0.5) }
func BenchmarkListing1PathInflation(b *testing.B) { benchExperiment(b, "listing1", 1) }
func BenchmarkFig4RTBH(b *testing.B)              { benchExperiment(b, "fig4", 0.5) }
func BenchmarkFig5aTableGrowth(b *testing.B)      { benchExperiment(b, "fig5a", 0.4) }
func BenchmarkFig5bMOAS(b *testing.B)             { benchExperiment(b, "fig5b", 0.4) }
func BenchmarkFig5cTransit(b *testing.B)          { benchExperiment(b, "fig5c", 0.4) }
func BenchmarkFig5dCommunities(b *testing.B)      { benchExperiment(b, "fig5d", 1) }
func BenchmarkFig6PfxMonitor(b *testing.B)        { benchExperiment(b, "fig6", 0.5) }
func BenchmarkFig9RTDiffs(b *testing.B)           { benchExperiment(b, "fig9", 0.5) }
func BenchmarkRTAccuracy(b *testing.B)            { benchExperiment(b, "rt-accuracy", 0.6) }
func BenchmarkFig10Outages(b *testing.B)          { benchExperiment(b, "fig10", 0.7) }
func BenchmarkLatency(b *testing.B)               { benchExperiment(b, "latency", 0.5) }

// benchArchive generates one shared archive for the throughput and
// ablation benches.
func benchArchive(b *testing.B) string {
	b.Helper()
	dir := b.TempDir()
	p := astopo.DefaultParams(3)
	p.StubCount = 120
	topo := astopo.Generate(p)
	sim, err := collector.NewSimulator(collector.Config{
		Topo:              topo,
		Collectors:        collector.DefaultCollectors(topo, 8),
		ChurnFlapsPerHour: 60,
		Seed:              3,
	})
	if err != nil {
		b.Fatal(err)
	}
	store, err := archive.NewStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	if _, err := sim.GenerateArchive(store, start, start.Add(2*time.Hour)); err != nil {
		b.Fatal(err)
	}
	return dir
}

// benchStreamThroughput measures the full libBGPStream pipeline —
// open files, gunzip, parse MRT, merge, decompose into elems — with
// the given decode-worker bound (0 = GOMAXPROCS: the parallel
// prefetch pipeline sized to the -cpu value; 1 = the sequential
// in-line pipeline). Beyond the standard B/op and allocs/op it
// reports the per-elem normalisations that pin the hot-path
// allocation budget, counted via MemStats so prefetch-worker
// allocations are included:
//
//	elems/op    — elems decoded per iteration (fixed by the archive)
//	Melems/s    — end-to-end throughput
//	allocs/elem — heap allocations per delivered elem
//	B/elem      — heap bytes per delivered elem
func benchStreamThroughput(b *testing.B, workers int) {
	dir := benchArchive(b)
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	total := 0
	elems := 0
	for i := 0; i < b.N; i++ {
		s := core.NewStream(context.Background(), &core.Directory{Dir: dir}, core.Filters{})
		s.SetDecodeWorkers(workers)
		elems = 0
		for {
			_, _, err := s.NextElem()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			elems++
		}
		s.Close()
		if elems == 0 {
			b.Fatal("no elems")
		}
		total += elems
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(elems), "elems/op")
	b.ReportMetric(float64(total)/b.Elapsed().Seconds()/1e6, "Melems/s")
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(total), "allocs/elem")
	b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(total), "B/elem")
}

// BenchmarkStreamThroughput is the headline ingest bench: the
// parallel prefetch/decode pipeline at its default width (GOMAXPROCS
// decode workers). Run with -cpu 1,4 to see the scaling against
// BenchmarkStreamThroughputSequential, which pins the workers=1
// baseline the ordering property test compares against.
func BenchmarkStreamThroughput(b *testing.B) { benchStreamThroughput(b, 0) }

// BenchmarkStreamThroughputSequential is the workers=1 (in-line
// decode) baseline of BenchmarkStreamThroughput.
func BenchmarkStreamThroughputSequential(b *testing.B) { benchStreamThroughput(b, 1) }

// BenchmarkAblationNoPartition compares the §3.3.4 partitioned merge
// against one big heap over every file (the design alternative).
func BenchmarkAblationNoPartition(b *testing.B) {
	r := testRandSeries(200, 5000)
	b.Run("partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// 10 disjoint groups of 20 sources (how dump windows
			// partition in practice).
			var groups [][]merge.Source[int]
			for g := 0; g < 10; g++ {
				var sources []merge.Source[int]
				for j := 0; j < 20; j++ {
					sources = append(sources, &merge.SliceSource[int]{Items: r[g*20+j]})
				}
				groups = append(groups, sources)
			}
			seq := merge.NewSequence(func(a, c int) bool { return a < c }, groups...)
			for {
				if _, err := seq.Next(); err != nil {
					break
				}
			}
		}
	})
	b.Run("one-big-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sources []merge.Source[int]
			for j := 0; j < 200; j++ {
				sources = append(sources, &merge.SliceSource[int]{Items: r[j]})
			}
			m := merge.NewMerger(func(a, c int) bool { return a < c }, sources...)
			for {
				if _, err := m.Next(); err != nil {
					break
				}
			}
		}
	})
}

func testRandSeries(n, perSource int) [][]int {
	out := make([][]int, n)
	seed := uint64(99)
	for i := range out {
		items := make([]int, perSource)
		for j := range items {
			seed = seed*6364136223846793005 + 1442695040888963407
			items[j] = int(seed % 1e9)
		}
		sort.Ints(items)
		out[i] = items
	}
	return out
}

// BenchmarkAblationTrieVsScan compares the prefix-filter radix trie
// against the naive linear scan over filter prefixes.
func BenchmarkAblationTrieVsScan(b *testing.B) {
	var filters []netip.Prefix
	seed := uint64(7)
	for i := 0; i < 1000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		a := netip.AddrFrom4([4]byte{byte(20 + seed%32), byte(seed >> 8), 0, 0})
		p, _ := a.Prefix(16 + int(seed>>16%9))
		filters = append(filters, p)
	}
	probes := make([]netip.Prefix, 1024)
	for i := range probes {
		seed = seed*6364136223846793005 + 1442695040888963407
		a := netip.AddrFrom4([4]byte{byte(20 + seed%32), byte(seed >> 8), byte(seed >> 16), 0})
		probes[i], _ = a.Prefix(24)
	}
	b.Run("trie", func(b *testing.B) {
		t := prefixtrie.New[struct{}]()
		for _, p := range filters {
			t.Insert(p, struct{}{})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.OverlapsAny(probes[i%len(probes)])
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := probes[i%len(probes)]
			for _, f := range filters {
				fp := f.Masked()
				if (fp.Bits() <= p.Bits() && fp.Contains(p.Addr())) ||
					(p.Bits() <= fp.Bits() && p.Contains(fp.Addr())) {
					break
				}
			}
		}
	})
}

// benchLiveElem is a representative announcement for the push-feed
// codec and fan-out benches.
func benchLiveElem() core.Elem {
	return core.Elem{
		Type:        core.ElemAnnouncement,
		Timestamp:   time.Date(2016, 3, 1, 0, 0, 0, 123456000, time.UTC),
		PeerAddr:    netip.MustParseAddr("192.0.2.1"),
		PeerASN:     65001,
		Prefix:      netip.MustParsePrefix("203.0.113.0/24"),
		NextHop:     netip.MustParseAddr("192.0.2.1"),
		ASPath:      bgp.SequencePath(65001, 3356, 174, 64512),
		Communities: bgp.Communities{bgp.NewCommunity(3356, 9999), bgp.NewCommunity(701, 666)},
	}
}

// BenchmarkRISLiveEncodeDecode measures one full push-feed codec
// cycle: elem -> JSON message -> elem + synthesised record, the
// per-message cost on both ends of the wire.
func BenchmarkRISLiveEncodeDecode(b *testing.B) {
	e := benchLiveElem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := json.Marshal(rislive.Message{Type: rislive.TypeMessage, Data: rislive.EncodeElem("ris", "rrc00", &e)})
		if err != nil {
			b.Fatal(err)
		}
		var msg rislive.Message
		if err := json.Unmarshal(buf, &msg); err != nil {
			b.Fatal(err)
		}
		if _, _, err := msg.Data.Record(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRISLiveFanout measures server-side publish throughput
// fanning out to subscribed SSE clients that drain concurrently,
// reporting end-to-end delivered messages per publish.
func BenchmarkRISLiveFanout(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "1client", 4: "4clients", 16: "16clients"}[clients], func(b *testing.B) {
			benchRISLiveFanoutE2E(b, clients)
		})
	}
	// The >10k-subscriber scale question (ROADMAP PR 1 follow-up) is
	// dominated by server-side fan-out cost, so the large sizes drive
	// ServeHTTP directly over in-process writers — no TCP, no client
	// decode — and pin the per-subscriber publish cost, which after
	// the single-encode change is a filter check and a channel send
	// (allocs/elem-sub → 0 as subscribers grow: the one encode+frame
	// amortises across the fan-out). Sizes up to 4096 keep the buffer
	// the historical 4096 so allocs/elem-sub stays comparable across
	// BENCH_N.json files; the 16k/65k shard-scale runs use a small
	// buffer — at those sizes the bench pins publish-side cost (p99
	// publish latency must stay flat as subscribers grow), not drain
	// completeness, and a 4096-deep buffer per 65k subscribers would
	// be pure memory noise.
	for _, clients := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("%dsubs-direct", clients), func(b *testing.B) {
			benchRISLiveFanoutDirect(b, clients, 4096)
		})
	}
	for _, clients := range []int{16384, 65536} {
		b.Run(fmt.Sprintf("%dsubs-direct", clients), func(b *testing.B) {
			benchRISLiveFanoutDirect(b, clients, 128)
		})
	}
}

// benchFanoutWriter is an in-process SSE sink: an http.ResponseWriter
// + Flusher that counts frames and discards bytes.
type benchFanoutWriter struct {
	h      http.Header
	frames *atomic.Uint64
}

func (w *benchFanoutWriter) Header() http.Header { return w.h }
func (w *benchFanoutWriter) WriteHeader(int)     {}
func (w *benchFanoutWriter) Flush()              {}
func (w *benchFanoutWriter) Write(p []byte) (int, error) {
	w.frames.Add(1)
	return len(p), nil
}

// benchRISLiveFanoutDirect measures pure server-side fan-out at large
// subscriber counts: handlers run in-process against discarding
// writers. Reported metrics:
//
//	delivered/op   — frames that reached subscriber writers per publish
//	dropped/op     — per-subscriber buffer drops per publish
//	allocs/elem    — heap allocations per published elem
//	allocs/elem-sub — the same normalised per (elem, subscriber) pair
//	p99-publish-ns — p99 latency of a single Publish call (the time the
//	                 producer is held, which bounds ingest throughput)
func benchRISLiveFanoutDirect(b *testing.B, clients, buffer int) {
	srv := &rislive.Server{KeepAlive: time.Hour, BufferSize: buffer}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		w := &benchFanoutWriter{h: http.Header{}, frames: &delivered}
		req := httptest.NewRequest(http.MethodGet, "/", nil).WithContext(ctx)
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.ServeHTTP(w, req)
		}()
	}
	deadline := time.Now().Add(30 * time.Second)
	for srv.Stats().Subscribers < clients {
		if time.Now().After(deadline) {
			b.Fatal("subscribers did not register")
		}
		time.Sleep(time.Millisecond)
	}

	e := benchLiveElem()
	samples := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		srv.Publish("ris", "rrc00", &e)
		samples = append(samples, time.Since(t0))
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	want := uint64(b.N * clients)
	drainUntil := time.Now().Add(10 * time.Second)
	for delivered.Load()+srv.Stats().Dropped < want && time.Now().Before(drainUntil) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	srv.Close()
	allocs := float64(after.Mallocs - before.Mallocs)
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	p99 := samples[min((len(samples)*99)/100, len(samples)-1)]
	b.ReportMetric(float64(delivered.Load())/float64(b.N), "delivered/op")
	b.ReportMetric(float64(srv.Stats().Dropped)/float64(b.N), "dropped/op")
	b.ReportMetric(allocs/float64(b.N), "allocs/elem")
	b.ReportMetric(allocs/float64(want), "allocs/elem-sub")
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-publish-ns")
}

func benchRISLiveFanoutE2E(b *testing.B, clients int) {
	// ShardQueue is raised to match the subscriber buffers: the pacing
	// below bounds the publish backlog to half of bufferSize, and the
	// default 8192-elem shard queue would overflow (and drop) long
	// before that bound on single-core runs.
	const bufferSize = 65536
	srv := &rislive.Server{KeepAlive: time.Hour, BufferSize: bufferSize, ShardQueue: bufferSize}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Uint64
	for i := 0; i < clients; i++ {
		c := rislive.NewClient(hs.URL, rislive.Subscription{})
		defer c.Close()
		go func() {
			for {
				if _, _, err := c.NextElem(ctx); err != nil {
					return
				}
				delivered.Add(1)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Subscribers < clients {
		if time.Now().After(deadline) {
			b.Fatal("subscribers did not connect")
		}
		time.Sleep(time.Millisecond)
	}

	e := benchLiveElem()
	// Warm-up: publish a batch and wait until every client has decoded
	// it. The first frames pay TLS-less TCP ramp-up and client start-up
	// costs, and on GOMAXPROCS=1 the drain goroutines may not have run
	// at all before the measured loop floods the buffers — that skew is
	// what made pre-PR-9 1-core runs report ~0.2 dropped/op at a single
	// client. Metrics below are deltas from the post-warm-up snapshot.
	const warmup = 64
	for i := 0; i < warmup; i++ {
		srv.Publish("ris", "rrc00", &e)
	}
	warmDeadline := time.Now().Add(5 * time.Second)
	for delivered.Load() < uint64(warmup*clients) {
		if time.Now().After(warmDeadline) {
			b.Fatalf("warm-up frames not delivered: %d of %d", delivered.Load(), warmup*clients)
		}
		time.Sleep(time.Millisecond)
	}
	if d := srv.Stats().Dropped; d != 0 {
		b.Fatalf("warm-up dropped %d frames with a %d-deep buffer", d, bufferSize)
	}
	baseDelivered := delivered.Load()

	// Pacing bounds for the measured loop: once the published-but-not-
	// delivered backlog reaches half the aggregate buffer capacity,
	// yield until the drains pull it back to a quarter. A starved drain
	// goroutine then gets the processor instead of its buffer
	// overflowing, so delivered/op == clients and dropped/op == 0 on
	// any core count; the cost when drains keep up is one atomic load
	// per publish.
	paceHigh := uint64(clients) * bufferSize / 2
	paceLow := uint64(clients) * bufferSize / 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Publish("ris", "rrc00", &e)
		published := uint64(i+1) * uint64(clients)
		if published-(delivered.Load()-baseDelivered) >= paceHigh {
			// The spin bound subtracts drops (Stats is too heavy for
			// the per-publish fast path above, fine here): dropped
			// frames never arrive, and waiting for them would spin
			// forever.
			for published-(delivered.Load()-baseDelivered)-srv.Stats().Dropped > paceLow {
				runtime.Gosched()
			}
		}
	}
	b.StopTimer()
	// Drain window: count what actually reached the clients.
	want := uint64(b.N * clients)
	drainUntil := time.Now().Add(5 * time.Second)
	for delivered.Load()-baseDelivered+srv.Stats().Dropped < want && time.Now().Before(drainUntil) {
		time.Sleep(time.Millisecond)
	}
	b.ReportMetric(float64(delivered.Load()-baseDelivered)/float64(b.N), "delivered/op")
	b.ReportMetric(float64(srv.Stats().Dropped)/float64(b.N), "dropped/op")
}

// BenchmarkArchiveGeneration measures the simulator substrate itself.
func BenchmarkArchiveGeneration(b *testing.B) {
	p := astopo.DefaultParams(3)
	p.StubCount = 80
	topo := astopo.Generate(p)
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "bench-archive-*")
		if err != nil {
			b.Fatal(err)
		}
		sim, err := collector.NewSimulator(collector.Config{
			Topo:              topo,
			Collectors:        collector.DefaultCollectors(topo, 6),
			ChurnFlapsPerHour: 30,
			Seed:              int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		store, err := archive.NewStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.GenerateArchive(store, start, start.Add(time.Hour)); err != nil {
			b.Fatal(err)
		}
		os.RemoveAll(dir)
	}
}

// --- filter-language and compiled-filter hot-path benches ---
//
// The per-elem match benches measure the compiledFilters satellite of
// PR 2: every string/scalar dimension is a hash-set probe and every
// prefix filter a radix lookup, instead of slice scans per record.

// benchFilterString is a representative medium-size query: several
// alternatives per dimension, every term exercised.
const benchFilterString = "project ris or routeviews and collector rrc00 or rrc01 or route-views2 " +
	"and type updates and elemtype announcements or withdrawals " +
	"and peer 3356 or 174 or 701 and origin 64500 or 64501 " +
	"and aspath 1299 and prefix more 10.0.0.0/8 or exact 192.0.2.0/24 " +
	"and community 65000:666 or 701:*"

func BenchmarkFilterStringParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ParseFilterString(benchFilterString); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterStringRender(b *testing.B) {
	f, err := core.ParseFilterString(benchFilterString)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if f.String() == "" {
			b.Fatal("empty canonical form")
		}
	}
}

func BenchmarkFilterCompile(b *testing.B) {
	f, err := core.ParseFilterString(benchFilterString)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if core.CompileFilters(f) == nil {
			b.Fatal("nil compiled filters")
		}
	}
}

// benchElems builds a mixed workload: ~half the elems pass the
// benchFilterString predicates, the rest fail at different stages.
func benchElems() []core.Elem {
	mk := func(peer uint32, pfx string, origin uint32, comm uint32) core.Elem {
		return core.Elem{
			Type:        core.ElemAnnouncement,
			PeerASN:     peer,
			Prefix:      netip.MustParsePrefix(pfx),
			ASPath:      bgp.SequencePath(peer, 1299, origin),
			Communities: bgp.Communities{bgp.Community(comm)},
		}
	}
	return []core.Elem{
		mk(3356, "10.1.0.0/16", 64500, 65000<<16|666),   // passes everything
		mk(174, "192.0.2.0/24", 64501, 701<<16|1),       // passes via alternatives
		mk(9999, "10.1.0.0/16", 64500, 65000<<16|666),   // fails peer set
		mk(3356, "172.16.0.0/12", 64500, 65000<<16|666), // fails prefix tables
		mk(3356, "10.1.0.0/16", 65535, 65000<<16|666),   // fails origin set
		mk(3356, "10.1.0.0/16", 64500, 1),               // fails community sets
		{Type: core.ElemWithdrawal, PeerASN: 701, Prefix: netip.MustParsePrefix("10.2.0.0/16")},
	}
}

func BenchmarkFilterMatchElem(b *testing.B) {
	f, err := core.ParseFilterString(benchFilterString)
	if err != nil {
		b.Fatal(err)
	}
	c := core.CompileFilters(f)
	elems := benchElems()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &elems[i%len(elems)]
		_ = c.MatchElem(e)
	}
}

func BenchmarkFilterMatchMeta(b *testing.B) {
	f, err := core.ParseFilterString(benchFilterString)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	f.Start, f.End = start, start.Add(2*time.Hour)
	c := core.CompileFilters(f)
	metas := []archive.DumpMeta{
		{Project: "ris", Collector: "rrc00", Type: archive.DumpUpdates, Time: start, Duration: 5 * time.Minute},
		{Project: "ris", Collector: "rrc12", Type: archive.DumpUpdates, Time: start, Duration: 5 * time.Minute},
		{Project: "routeviews", Collector: "route-views2", Type: archive.DumpRIB, Time: start, Duration: 5 * time.Minute},
		{Project: "nope", Collector: "rrc00", Type: archive.DumpUpdates, Time: start, Duration: 5 * time.Minute},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.MatchMeta(metas[i%len(metas)])
	}
}

// --- gap-repair pipeline: pump-stall / delivery-gap benches ---
//
// The scenario: a paced feed loses three windows in quick succession,
// each backfill fetch takes repairFetchDelay. The pipelined repairer
// (internal/gaprepair) keeps draining the feed while workers fetch
// concurrently; the blocking baseline below reproduces the PR 3
// repair loop — hold the flow, fetch synchronously, splice — whose
// pump stalls for the whole fetch and whose fetches serialise.
// Reported metrics:
//
//	p99-delivery-ms — p99 gap between consecutive delivered elems
//	max-stall-ms    — longest pause between live-source reads (the
//	                  pump stall that turns into upstream drops)

const (
	repairFetchDelay = 100 * time.Millisecond
	repairFeedN      = 3000
	repairFeedPace   = 20 * time.Microsecond
)

// repairBenchPair is one scripted feed elem.
type repairBenchPair struct {
	rec  *core.Record
	elem *core.Elem
}

func repairBenchUniverse() []repairBenchPair {
	t0 := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	out := make([]repairBenchPair, repairFeedN)
	for i := range out {
		e := core.Elem{
			Type:      core.ElemAnnouncement,
			Timestamp: t0.Add(time.Duration(i) * time.Millisecond),
			PeerAddr:  netip.MustParseAddr("192.0.2.1"),
			PeerASN:   uint32(65000 + i),
			Prefix:    netip.MustParsePrefix("203.0.113.0/24"),
		}
		rec := core.NewElemRecord("ris", "rrc00", core.DumpUpdates, e.Timestamp, []core.Elem{e})
		es, _ := rec.Elems()
		out[i] = repairBenchPair{rec: rec, elem: &es[0]}
	}
	return out
}

// repairBenchFeed scripts a lossy paced push feed: the index ranges in
// lost are skipped, and the corresponding loss window becomes visible
// to TakeGaps just before the elem that closes it — the rislive
// ordering contract. It records the longest pause between reads, the
// pump-stall metric.
type repairBenchFeed struct {
	universe []repairBenchPair
	lost     [][2]int // half-open index ranges, ascending
	pace     time.Duration
	i        int

	mu       sync.Mutex
	pending  []core.Gap
	lastRet  time.Time
	maxStall time.Duration
}

func (f *repairBenchFeed) NextElem(ctx context.Context) (*core.Record, *core.Elem, error) {
	f.mu.Lock()
	if !f.lastRet.IsZero() {
		if d := time.Since(f.lastRet); d > f.maxStall {
			f.maxStall = d
		}
	}
	f.mu.Unlock()
	for len(f.lost) > 0 && f.i == f.lost[0][0] {
		r := f.lost[0]
		f.lost = f.lost[1:]
		f.mu.Lock()
		f.pending = append(f.pending, core.Gap{
			From:   f.universe[r[0]-1].elem.Timestamp,
			Until:  f.universe[r[1]].elem.Timestamp,
			Reason: "bench",
		})
		f.mu.Unlock()
		f.i = r[1]
	}
	if f.i >= len(f.universe) {
		return nil, nil, io.EOF
	}
	p := f.universe[f.i]
	f.i++
	if f.pace > 0 {
		time.Sleep(f.pace)
	}
	f.mu.Lock()
	f.lastRet = time.Now()
	f.mu.Unlock()
	return p.rec, p.elem, nil
}

func (f *repairBenchFeed) TakeGaps() []core.Gap {
	f.mu.Lock()
	defer f.mu.Unlock()
	g := f.pending
	f.pending = nil
	return g
}

func (f *repairBenchFeed) Close() error { return nil }

func (f *repairBenchFeed) stall() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxStall
}

// repairBenchBackfill serves any window of the universe after a fixed
// delay, the "slow archive".
type repairBenchBackfill struct {
	universe []repairBenchPair
	delay    time.Duration
}

func (b repairBenchBackfill) window(from, until time.Time) []repairBenchPair {
	var sel []repairBenchPair
	for _, p := range b.universe {
		if !p.elem.Timestamp.Before(from) && !p.elem.Timestamp.After(until) {
			sel = append(sel, p)
		}
	}
	return sel
}

func (b repairBenchBackfill) Backfill(ctx context.Context, from, until time.Time) (*core.Stream, error) {
	select {
	case <-time.After(b.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	sel := b.window(from, until)
	elems := make([]core.Elem, 0, len(sel))
	for _, p := range sel {
		elems = append(elems, *p.elem)
	}
	src := &repairBenchSliceSource{elems: elems}
	return core.NewLiveStream(ctx, src, core.Filters{}), nil
}

type repairBenchSliceSource struct {
	elems []core.Elem
	i     int
}

func (s *repairBenchSliceSource) NextElem(ctx context.Context) (*core.Record, *core.Elem, error) {
	if s.i >= len(s.elems) {
		return nil, nil, io.EOF
	}
	e := s.elems[s.i]
	s.i++
	rec := core.NewElemRecord("ris", "rrc00", core.DumpUpdates, e.Timestamp, []core.Elem{e})
	es, _ := rec.Elems()
	return rec, &es[0], nil
}

func (s *repairBenchSliceSource) Close() error { return nil }

// Three loss windows in quick succession: close enough that a
// concurrent repairer overlaps their fetches, far enough apart that
// each is reported separately.
func repairBenchLost() [][2]int {
	return [][2]int{{500, 800}, {850, 1150}, {1200, 1500}}
}

// p99 of the recorded inter-delivery gaps.
func repairBenchP99(gaps []time.Duration) time.Duration {
	if len(gaps) == 0 {
		return 0
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)-1-len(gaps)/100]
}

func repairBenchMax(gaps []time.Duration) time.Duration {
	var m time.Duration
	for _, g := range gaps {
		if g > m {
			m = g
		}
	}
	return m
}

// BenchmarkRepairConcurrentPipeline measures the pipelined repairer:
// fetches overlap the live flow (and each other), so the pump never
// stalls and the delivery pause is bounded by roughly one fetch
// latency regardless of how many windows are in flight.
func BenchmarkRepairConcurrentPipeline(b *testing.B) {
	universe := repairBenchUniverse()
	var worstStall, worstP99, worstMax time.Duration
	for i := 0; i < b.N; i++ {
		feed := &repairBenchFeed{universe: universe, lost: repairBenchLost(), pace: repairFeedPace}
		rep := gaprepair.New(feed, repairBenchBackfill{universe: universe, delay: repairFetchDelay},
			gaprepair.Options{Concurrency: 3, PollInterval: 10 * time.Millisecond})
		var gaps []time.Duration
		last := time.Now()
		n := 0
		for {
			_, _, err := rep.NextElem(context.Background())
			if err != nil {
				break
			}
			now := time.Now()
			gaps = append(gaps, now.Sub(last))
			last = now
			n++
		}
		rep.Close()
		if n != repairFeedN {
			b.Fatalf("delivered %d elems, want %d", n, repairFeedN)
		}
		if s := feed.stall(); s > worstStall {
			worstStall = s
		}
		if p := repairBenchP99(gaps); p > worstP99 {
			worstP99 = p
		}
		if m := repairBenchMax(gaps); m > worstMax {
			worstMax = m
		}
	}
	b.ReportMetric(float64(worstStall.Microseconds())/1e3, "max-stall-ms")
	b.ReportMetric(float64(worstP99.Microseconds())/1e3, "p99-delivery-ms")
	b.ReportMetric(float64(worstMax.Microseconds())/1e3, "max-delivery-ms")
}

// BenchmarkRepairBlockingBaseline reproduces the pre-pipeline repair
// loop for comparison: on a gap report the single loop holds the live
// flow, fetches the window synchronously (stalling the pump for the
// whole fetch), splices, and only then resumes reading. Its pump
// stall and delivery pause both sit at one fetch latency per window,
// and windows serialise.
func BenchmarkRepairBlockingBaseline(b *testing.B) {
	universe := repairBenchUniverse()
	bf := repairBenchBackfill{universe: universe, delay: repairFetchDelay}
	var worstStall, worstP99, worstMax time.Duration
	for i := 0; i < b.N; i++ {
		feed := &repairBenchFeed{universe: universe, lost: repairBenchLost(), pace: repairFeedPace}
		var gaps []time.Duration
		last := time.Now()
		deliver := func(p repairBenchPair) {
			now := time.Now()
			gaps = append(gaps, now.Sub(last))
			last = now
		}
		n := 0
		ctx := context.Background()
		for {
			rec, elem, err := feed.NextElem(ctx)
			if err != nil {
				break
			}
			pending := feed.TakeGaps()
			if len(pending) == 0 {
				deliver(repairBenchPair{rec, elem})
				n++
				continue
			}
			// Blocking repair cycle: hold until the flow passes the
			// window, then fetch synchronously and splice.
			w := pending[0]
			hold := []repairBenchPair{{rec, elem}}
			for !hold[len(hold)-1].elem.Timestamp.After(w.Until) {
				hrec, helem, herr := feed.NextElem(ctx)
				if herr != nil {
					break
				}
				hold = append(hold, repairBenchPair{hrec, helem})
			}
			select {
			case <-time.After(bf.delay): // the synchronous fetch
			case <-ctx.Done():
			}
			items := bf.window(w.From, w.Until)
			// Merge items+hold in time order (both already sorted).
			ii, hi := 0, 0
			for ii < len(items) || hi < len(hold) {
				if hi >= len(hold) || (ii < len(items) && !items[ii].elem.Timestamp.After(hold[hi].elem.Timestamp)) {
					// Skip the backfill copies of the boundary elems
					// (delivered live before/after the window; feed
					// timestamps are unique in this scenario).
					if ts := items[ii].elem.Timestamp; !ts.Equal(w.From) && !ts.Equal(w.Until) {
						deliver(items[ii])
						n++
					}
					ii++
					continue
				}
				deliver(hold[hi])
				n++
				hi++
			}
		}
		if n != repairFeedN {
			b.Fatalf("delivered %d elems, want %d", n, repairFeedN)
		}
		if s := feed.stall(); s > worstStall {
			worstStall = s
		}
		if p := repairBenchP99(gaps); p > worstP99 {
			worstP99 = p
		}
		if m := repairBenchMax(gaps); m > worstMax {
			worstMax = m
		}
	}
	b.ReportMetric(float64(worstStall.Microseconds())/1e3, "max-stall-ms")
	b.ReportMetric(float64(worstP99.Microseconds())/1e3, "p99-delivery-ms")
	b.ReportMetric(float64(worstMax.Microseconds())/1e3, "max-delivery-ms")
}

// --- observability: the metrics hot path must not allocate ---

// BenchmarkObsvHotPath measures one update of each instrument kind
// through pre-interned handles — the pattern every pipeline call site
// uses (package-level vars resolved at init, one atomic op per
// update). scripts/bench.sh gates on 0 allocs/op: an allocation here
// would tax every elem of every stream.
func BenchmarkObsvHotPath(b *testing.B) {
	reg := obsv.NewRegistry()
	ctr := reg.Counter("bench_events_total", "events")
	gauge := reg.Gauge("bench_depth", "depth")
	hist := reg.Histogram("bench_seconds", "latency", obsv.LatencyBuckets()...)
	labeled := reg.CounterVec("bench_labeled_total", "labeled", "transport").With("sse")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr.Inc()
		gauge.Add(1)
		hist.Observe(float64(i&1023) * 1e-6)
		labeled.Inc()
	}
}
