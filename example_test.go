package bgpstream_test

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"time"

	bgpstream "github.com/bgpstream-go/bgpstream"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// announcementSource is a minimal in-memory push source: any type with
// NextElem/Close is an ElemSource and plugs into Open via
// WithSourceInstance. Real transports (the rislive SSE client) work
// exactly the same way.
type announcementSource struct {
	elems []bgpstream.Elem
	i     int
}

func (s *announcementSource) NextElem(ctx context.Context) (*bgpstream.Record, *bgpstream.Elem, error) {
	if s.i >= len(s.elems) {
		return nil, nil, io.EOF
	}
	e := s.elems[s.i]
	s.i++
	rec := bgpstream.NewElemRecord("ris", "rrc00", bgpstream.DumpUpdates, e.Timestamp, []bgpstream.Elem{e})
	elems, _ := rec.Elems()
	return rec, &elems[0], nil
}

func (s *announcementSource) Close() error { return nil }

// exampleElems builds a tiny deterministic flow: two announcements and
// one withdrawal.
func exampleElems() []bgpstream.Elem {
	ts := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	mk := func(sec int, typ bgpstream.ElemType, prefix string) bgpstream.Elem {
		return bgpstream.Elem{
			Type:      typ,
			Timestamp: ts.Add(time.Duration(sec) * time.Second),
			PeerASN:   65000,
			Prefix:    mustPrefix(prefix),
		}
	}
	return []bgpstream.Elem{
		mk(0, bgpstream.ElemAnnouncement, "203.0.113.0/24"),
		mk(1, bgpstream.ElemWithdrawal, "198.51.100.0/24"),
		mk(2, bgpstream.ElemAnnouncement, "192.0.2.0/24"),
	}
}

// ExampleOpen is the quickstart: bind a source to a declarative filter
// string and range over the elems. Swap WithSourceInstance for a named
// source — WithSource("broker", ...), WithSource("rislive", ...) — and
// the rest of the program is unchanged.
func ExampleOpen() {
	s, err := bgpstream.Open(context.Background(),
		bgpstream.WithSourceInstance(&announcementSource{elems: exampleElems()}),
		bgpstream.WithFilterString("elemtype announcements"))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	for rec, elem := range s.Elems() {
		fmt.Printf("%s %s/%s %s\n", elem.Type, rec.Project, rec.Collector, elem.Prefix)
	}
	if err := s.Err(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// A ris/rrc00 203.0.113.0/24
	// A ris/rrc00 192.0.2.0/24
}

// ExampleParseFilterString compiles a BGPStream v2 filter string and
// shows the structured result; errors carry the byte offset of the
// offending token.
func ExampleParseFilterString() {
	f, err := bgpstream.ParseFilterString("collector rrc00 and prefix more 10.0.0.0/8 and elemtype announcements")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("collectors:", f.Collectors)
	fmt.Println("prefixes:", len(f.Prefixes), "elemtypes:", len(f.ElemTypes))

	if _, err := bgpstream.ParseFilterString("collectr rrc00"); err != nil {
		fmt.Println("syntax errors carry positions:", err != nil)
	}
	// Output:
	// collectors: [rrc00]
	// prefixes: 1 elemtypes: 1
	// syntax errors carry positions: true
}

// ExampleFilters_String renders a filter set back into its canonical
// string — the exact inverse of ParseFilterString, so every stream can
// report the query that defines it.
func ExampleFilters_String() {
	f, err := bgpstream.ParseFilterString(`type updates and peer 3356 or 174 and prefix exact 192.0.2.0/24`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(f.String())
	// Output:
	// type updates and peer 3356 or 174 and prefix exact 192.0.2.0/24
}

// ExampleStream_Elems shows the range-over-func iterator contract:
// iterate with range, then check Err (bufio.Scanner style — nil after
// a clean end of stream).
func ExampleStream_Elems() {
	s, err := bgpstream.Open(context.Background(),
		bgpstream.WithSourceInstance(&announcementSource{elems: exampleElems()}))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	n := 0
	for _, elem := range s.Elems() {
		n++
		_ = elem
	}
	fmt.Println("elems:", n, "err:", s.Err())
	// Output:
	// elems: 3 err: <nil>
}
