// Property test of the parallel ingest pipeline: for randomized
// overlapping archives, the prefetch/decode pipeline must yield the
// exact record sequence of a workers=1 (sequential, in-line decode)
// run — same statuses, timestamps, annotations and body bytes in the
// same order. Decode timing must never leak into the §3.3.4 merge
// order.
package bgpstream_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/astopo"
	"github.com/bgpstream-go/bgpstream/internal/collector"
	"github.com/bgpstream-go/bgpstream/internal/core"
)

// pipelineRecord is the comparable projection of one stream record.
type pipelineRecord struct {
	project   string
	collector string
	dumpType  core.DumpType
	dumpTime  time.Time
	status    core.RecordStatus
	position  core.DumpPosition
	time      time.Time
	body      []byte
}

// collectRecords drains a directory stream configured with the given
// pipeline parameters into comparable projections.
func collectRecords(t *testing.T, dir string, workers, readahead int) []pipelineRecord {
	t.Helper()
	s := core.NewStream(context.Background(), &core.Directory{Dir: dir}, core.Filters{})
	s.SetDecodeWorkers(workers)
	s.SetReadahead(readahead)
	defer s.Close()
	var out []pipelineRecord
	for {
		rec, err := s.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("workers=%d: Next: %v", workers, err)
		}
		out = append(out, pipelineRecord{
			project:   rec.Project,
			collector: rec.Collector,
			dumpType:  rec.DumpType,
			dumpTime:  rec.DumpTime,
			status:    rec.Status,
			position:  rec.Position,
			time:      rec.Time(),
			body:      append([]byte(nil), rec.MRT.Body...),
		})
	}
}

// generateRandomArchive builds a simulated multi-collector archive
// whose dump files overlap in time, with randomized topology, churn
// and duration.
func generateRandomArchive(t *testing.T, rng *rand.Rand) string {
	t.Helper()
	dir := t.TempDir()
	p := astopo.DefaultParams(3)
	p.StubCount = 40 + rng.Intn(60)
	topo := astopo.Generate(p)
	sim, err := collector.NewSimulator(collector.Config{
		Topo:              topo,
		Collectors:        collector.DefaultCollectors(topo, 2+rng.Intn(5)),
		ChurnFlapsPerHour: float64(20 + rng.Intn(80)),
		Seed:              rng.Int63(),
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := archive.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	dur := time.Duration(30+rng.Intn(90)) * time.Minute
	if _, err := sim.GenerateArchive(store, start, start.Add(dur)); err != nil {
		t.Fatal(err)
	}
	return dir
}

// truncateOneDump corrupts one dump file in place (body cut short),
// so the invalid-record path flows through the pipeline too.
func truncateOneDump(t *testing.T, dir string, rng *rand.Rand) {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			files = append(files, path)
		}
		return err
	})
	if err != nil || len(files) == 0 {
		t.Fatalf("no dump files to corrupt (err=%v)", err)
	}
	victim := files[rng.Intn(len(files))]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 {
		return
	}
	if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestParallelPipelineMatchesSequential is the ordering property test
// of ISSUE 5: across randomized overlapping archives — including one
// with a mid-file-corrupted dump — every parallel configuration
// (worker counts above, below and at partition width; readahead down
// to a single batch) yields a record sequence identical to workers=1.
func TestParallelPipelineMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(20160301))
	for iter := 0; iter < 3; iter++ {
		t.Run(fmt.Sprintf("archive%d", iter), func(t *testing.T) {
			dir := generateRandomArchive(t, rng)
			if iter == 1 {
				truncateOneDump(t, dir, rng)
			}
			want := collectRecords(t, dir, 1, 0)
			if len(want) == 0 {
				t.Fatal("sequential run produced no records")
			}
			configs := []struct{ workers, readahead int }{
				{2, 64},  // fewer workers than files: semaphore contention
				{4, 0},   // the default-readahead parallel shape
				{16, 64}, // more workers than files
				{3, 1},   // single-batch readahead: constant backpressure
			}
			for _, cfg := range configs {
				got := collectRecords(t, dir, cfg.workers, cfg.readahead)
				if len(got) != len(want) {
					t.Fatalf("workers=%d readahead=%d: %d records, want %d",
						cfg.workers, cfg.readahead, len(got), len(want))
				}
				for i := range want {
					w, g := want[i], got[i]
					if g.project != w.project || g.collector != w.collector ||
						g.dumpType != w.dumpType || !g.dumpTime.Equal(w.dumpTime) ||
						g.status != w.status || g.position != w.position ||
						!g.time.Equal(w.time) || !bytes.Equal(g.body, w.body) {
						t.Fatalf("workers=%d readahead=%d: record %d differs:\n got %+v\nwant %+v",
							cfg.workers, cfg.readahead, i, g, w)
					}
				}
			}
		})
	}
}

// TestParallelPipelineEarlyClose closes a parallel stream mid-read:
// the prefetch workers must wind down (closing their dump files)
// instead of blocking forever on their readahead queues.
func TestParallelPipelineEarlyClose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := generateRandomArchive(t, rng)
	s := core.NewStream(context.Background(), &core.Directory{Dir: dir}, core.Filters{})
	s.SetDecodeWorkers(4)
	s.SetReadahead(1) // tiny queues: workers are parked on sends
	for i := 0; i < 10; i++ {
		if _, err := s.Next(); err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A second Close stays safe.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
}
