// End-to-end fault-tolerance property test: a randomized multi-dump
// archive consumed through a fault-injecting proxy (connection resets
// at random offsets, truncations, 5xx/429 bursts, stalls, Range
// amnesia) must yield the exact record sequence of a fault-free run —
// same statuses, timestamps, annotations and body bytes in the same
// order — with the parallel ingest pipeline enabled. Faults may cost
// retries and resumes; they must never cost data.
package bgpstream_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/resilience"
	"github.com/bgpstream-go/bgpstream/internal/resilience/faultproxy"
)

// proxiedMetas scans the on-disk archive and rewrites every dump URL
// to go through the given HTTP base URL instead of the local path.
func proxiedMetas(t *testing.T, dir, baseURL string) []archive.DumpMeta {
	t.Helper()
	store, err := archive.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := store.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) == 0 {
		t.Fatal("archive scan found no dumps")
	}
	for i := range metas {
		rel, err := filepath.Rel(dir, metas[i].URL)
		if err != nil {
			t.Fatal(err)
		}
		metas[i].URL = baseURL + "/" + filepath.ToSlash(rel)
	}
	return metas
}

// collectHTTPRecords drains a parallel-pipeline stream over the given
// metas into comparable projections.
func collectHTTPRecords(t *testing.T, metas []archive.DumpMeta, pol resilience.Policy, disableBreaker bool) []pipelineRecord {
	t.Helper()
	s := core.NewStream(context.Background(), &core.SingleFiles{Metas: metas}, core.Filters{})
	s.SetDecodeWorkers(4)
	s.SetFetchPolicy(pol)
	if disableBreaker {
		s.SetBreakerThreshold(-1)
	}
	defer s.Close()
	var out []pipelineRecord
	for {
		rec, err := s.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, pipelineRecord{
			project:   rec.Project,
			collector: rec.Collector,
			dumpType:  rec.DumpType,
			dumpTime:  rec.DumpTime,
			status:    rec.Status,
			position:  rec.Position,
			time:      rec.Time(),
			body:      append([]byte(nil), rec.MRT.Body...),
		})
	}
}

// TestFaultToleranceSequenceIdentity is the tentpole acceptance test:
// randomized faults on every network edge, byte-identical output.
func TestFaultToleranceSequenceIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-dump fault-injection property test")
	}
	rng := rand.New(rand.NewSource(7))
	dir := generateRandomArchive(t, rng)
	store, err := archive.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(&archive.Server{Store: store})
	defer srv.Close()
	cleanMetas := proxiedMetas(t, dir, srv.URL)
	want := collectHTTPRecords(t, cleanMetas, resilience.Policy{}, false)
	if len(want) == 0 {
		t.Fatal("clean run produced no records")
	}
	for _, rec := range want {
		if rec.status != core.StatusValid {
			t.Fatalf("clean run produced non-valid record: %+v", rec)
		}
	}

	for _, seed := range []uint64{1, 2, 3} {
		proxy := faultproxy.New(&archive.Server{Store: store})
		// Only retryable fault kinds: permanent statuses (404) would
		// legitimately change the output and are pinned separately in
		// TestFaultTolerance404. Stalls stay short so the run does too.
		proxy.Randomize(seed, faultproxy.Random{
			StatusProb:      0.10,
			ResetProb:       0.15,
			TruncateProb:    0.10,
			IgnoreRangeProb: 0.05,
			StallProb:       0.05,
			Statuses:        []int{502, 503, 429},
			MaxStall:        5 * time.Millisecond,
		})
		fsrv := httptest.NewServer(proxy)
		// A generous budget (and no breaker: random faults on a single
		// test host would trip it spuriously) so the property under
		// test is sequence identity, not budget tuning.
		pol := resilience.Policy{MaxAttempts: 10, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
		got := collectHTTPRecords(t, proxiedMetas(t, dir, fsrv.URL), pol, true)
		// A fault-free run costs one request per dump; every retry and
		// resume is an extra one.
		extra := proxy.TotalRequests() - len(cleanMetas)
		fsrv.Close()
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d records, want %d", seed, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if g.project != w.project || g.collector != w.collector ||
				g.dumpType != w.dumpType || !g.dumpTime.Equal(w.dumpTime) ||
				g.status != w.status || g.position != w.position ||
				!g.time.Equal(w.time) || !bytes.Equal(g.body, w.body) {
				t.Fatalf("seed %d: record %d differs:\n got %+v\nwant %+v", seed, i, g, w)
			}
		}
		// Zero extra requests means no fault was actually recovered
		// from and the property was vacuous.
		if extra <= 0 {
			t.Fatalf("seed %d: no faults injected (requests=%d, dumps=%d)",
				seed, proxy.TotalRequests(), len(cleanMetas))
		}
	}
}

// TestFaultTolerance404 pins the permanent-failure contract end to
// end: a missing dump costs exactly one request and degrades to
// exactly one corrupted-dump record amid otherwise valid data.
func TestFaultTolerance404(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dir := generateRandomArchive(t, rng)
	store, err := archive.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	proxy := faultproxy.New(&archive.Server{Store: store})
	srv := httptest.NewServer(proxy)
	defer srv.Close()
	metas := proxiedMetas(t, dir, srv.URL)
	missing := metas[0]
	missing.URL = srv.URL + "/ris/gone/updates.20160301.0000.gz"
	metas = append([]archive.DumpMeta{missing}, metas...)

	got := collectHTTPRecords(t, metas,
		resilience.Policy{MaxAttempts: 5, Backoff: time.Millisecond}, false)
	var corrupted, valid int
	for _, rec := range got {
		switch rec.status {
		case core.StatusCorruptedDump:
			corrupted++
		case core.StatusValid:
			valid++
		}
	}
	if corrupted != 1 || valid == 0 {
		t.Fatalf("corrupted=%d valid=%d, want exactly 1 corrupted-dump record among valid ones", corrupted, valid)
	}
	if n := proxy.Requests("/ris/gone/updates.20160301.0000.gz"); n != 1 {
		t.Fatalf("404 dump cost %d requests, want exactly 1 (no retry storm)", n)
	}
}
