package bgpstream_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/astopo"
	"github.com/bgpstream-go/bgpstream/internal/collector"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/rislive"

	bgpstream "github.com/bgpstream-go/bgpstream"
)

// generateArchive synthesises a small two-collector archive and
// returns its directory.
func generateArchive(t *testing.T, seed int64, hours int) (string, time.Time) {
	t.Helper()
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	topo := astopo.Generate(astopo.DefaultParams(seed))
	sim, err := collector.NewSimulator(collector.Config{
		Topo:              topo,
		Collectors:        collector.DefaultCollectors(topo, 4),
		ChurnFlapsPerHour: 30,
		Seed:              seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := archive.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.GenerateArchive(store, start, start.Add(time.Duration(hours)*time.Hour)); err != nil {
		t.Fatal(err)
	}
	return dir, start
}

// TestOpenPullEndToEnd drives the unified front end over a pull source
// (the directory transport from the registry) with a filter string,
// checking the filters bite and the range-over-func iterator works.
func TestOpenPullEndToEnd(t *testing.T) {
	dir, start := generateArchive(t, 14, 1)

	s, err := bgpstream.Open(context.Background(),
		bgpstream.WithSource("directory", bgpstream.SourceOptions{"path": dir}),
		bgpstream.WithFilterString("project ris and type ribs and elemtype ribs"),
		bgpstream.WithInterval(start, start.Add(time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The stream reports its canonical query.
	if got := s.Filters().String(); got != "project ris and type ribs and elemtype ribs" {
		t.Errorf("canonical filter = %q", got)
	}

	n := 0
	for rec, elem := range s.Elems() {
		if rec.Project != "ris" || elem.Type != bgpstream.ElemRIB {
			t.Fatalf("filter leak: %s %s", rec.Project, elem.Type)
		}
		n++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no RIB elems through Open")
	}

	// The same stream construction through the legacy constructor
	// yields the same elem count (old and new front ends agree).
	filters := bgpstream.Filters{
		Projects:  []string{"ris"},
		DumpTypes: []bgpstream.DumpType{bgpstream.DumpRIB},
		ElemTypes: []bgpstream.ElemType{bgpstream.ElemRIB},
		Start:     start,
		End:       start.Add(time.Hour),
	}
	legacy := bgpstream.NewStream(context.Background(), &bgpstream.Directory{Dir: dir}, filters)
	defer legacy.Close()
	m := 0
	for range legacy.Elems() {
		m++
	}
	if err := legacy.Err(); err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("legacy constructor saw %d elems, Open saw %d", m, n)
	}
}

// TestOpenCSVSource reaches the csvfile source through the registry.
func TestOpenCSVSource(t *testing.T) {
	dir, _ := generateArchive(t, 15, 1)
	store := &archive.Store{Root: dir}
	metas, err := store.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) == 0 {
		t.Fatal("no dumps scanned")
	}
	csvPath := filepath.Join(t.TempDir(), "index.csv")
	var sb strings.Builder
	sb.WriteString("# test index\n")
	for _, m := range metas {
		fmt.Fprintf(&sb, "%s,%s,%s,%d,%d,%s\n", m.Project, m.Collector, string(m.Type),
			m.Time.Unix(), int64(m.Duration/time.Second), m.URL)
	}
	if err := os.WriteFile(csvPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := bgpstream.Open(context.Background(),
		bgpstream.WithSource("csvfile", bgpstream.SourceOptions{"path": csvPath}),
		bgpstream.WithFilterString("type updates"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 0
	for rec := range s.Records() {
		if rec.DumpType != bgpstream.DumpUpdates {
			t.Fatalf("filter leak: %s", rec.DumpType)
		}
		n++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records through csvfile source")
	}
}

// TestOpenPushEndToEnd drives the unified front end over the push
// rislive source: an in-process SSE server replays a simulated
// archive, Open consumes it through the same registry and filter
// string surface as the pull path.
func TestOpenPushEndToEnd(t *testing.T) {
	dir, _ := generateArchive(t, 16, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	feed := &rislive.Server{KeepAlive: 100 * time.Millisecond}
	hs := httptest.NewServer(feed)
	defer hs.Close()
	go func() {
		for ctx.Err() == nil {
			rs := core.NewStream(ctx, &core.Directory{Dir: dir}, core.Filters{})
			rislive.Replay(ctx, rs, feed, rislive.ReplayOptions{})
			rs.Close()
		}
	}()

	s, err := bgpstream.Open(ctx,
		bgpstream.WithSource("rislive", bgpstream.SourceOptions{"url": hs.URL}),
		bgpstream.WithFilterString("elemtype announcements"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	n := 0
	for _, elem := range s.Elems() {
		if elem.Type != bgpstream.ElemAnnouncement {
			t.Fatalf("filter leak: %s through push source", elem.Type)
		}
		if n++; n >= 500 {
			break
		}
	}
	if n < 500 {
		t.Fatalf("only %d elems from push source (err: %v)", n, s.Err())
	}
}

// TestOpenSourceInstance exercises the adapter path: an
// already-constructed DataInterface flows through WithSourceInstance.
func TestOpenSourceInstance(t *testing.T) {
	dir, _ := generateArchive(t, 17, 1)
	s, err := bgpstream.Open(context.Background(),
		bgpstream.WithSourceInstance(&bgpstream.Directory{Dir: dir}),
		bgpstream.WithFilterString("type updates"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 0
	for range s.Records() {
		n++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records through WithSourceInstance")
	}
}

// TestSourceRegistry checks the registry listing and its error paths.
func TestSourceRegistry(t *testing.T) {
	infos := bgpstream.Sources()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"broker", "csvfile", "directory", "rislive", "singlefile"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Sources() missing %q: %v", want, names)
		}
	}
	if !sortedStrings(names) {
		t.Errorf("Sources() not sorted: %v", names)
	}

	if _, err := bgpstream.OpenSource("nope", nil); err == nil ||
		!strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown source error = %v", err)
	}
	if _, err := bgpstream.OpenSource("directory", bgpstream.SourceOptions{"wrong": "x"}); err == nil ||
		!strings.Contains(err.Error(), `no option "wrong"`) {
		t.Errorf("unknown option error = %v", err)
	}
	if _, err := bgpstream.OpenSource("directory", nil); err == nil ||
		!strings.Contains(err.Error(), `requires option "path"`) {
		t.Errorf("missing required option error = %v", err)
	}
	if _, err := bgpstream.OpenSource("rislive", bgpstream.SourceOptions{"url": "http://x", "stale": "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "bad duration") {
		t.Errorf("bad duration error = %v", err)
	}
	if _, err := bgpstream.OpenSource("singlefile", bgpstream.SourceOptions{}); err == nil {
		t.Error("singlefile without files accepted")
	}

	// Open without a source is an error, as is a bad filter string.
	if _, err := bgpstream.Open(context.Background()); err == nil {
		t.Error("Open without source accepted")
	}
	if _, err := bgpstream.Open(context.Background(),
		bgpstream.WithSource("directory", bgpstream.SourceOptions{"path": "/tmp"}),
		bgpstream.WithFilterString("collectr rrc00")); err == nil {
		t.Error("Open with bad filter string accepted")
	}
}

// TestRegisterCustomSource registers a synthetic push source and opens
// it through the same named path as the built-ins.
func TestRegisterCustomSource(t *testing.T) {
	bgpstream.RegisterSource(bgpstream.SourceInfo{
		Name: "test-synthetic", Kind: "push",
		Options: []bgpstream.SourceOption{{Name: "n", Description: "elems to emit"}},
	}, func(opts bgpstream.SourceOptions) (bgpstream.Source, error) {
		return bgpstream.PushSource(&syntheticSource{n: 3}), nil
	})
	s, err := bgpstream.Open(context.Background(),
		bgpstream.WithSource("test-synthetic", bgpstream.SourceOptions{"n": "3"}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 0
	for range s.Elems() {
		n++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("custom source yielded %d elems, want 3", n)
	}
}

// syntheticSource is a minimal ElemSource for registry tests.
type syntheticSource struct{ n, i int }

func (s *syntheticSource) NextElem(ctx context.Context) (*bgpstream.Record, *bgpstream.Elem, error) {
	if s.i >= s.n {
		return nil, nil, io.EOF
	}
	s.i++
	ts := time.Date(2016, 3, 1, 0, 0, s.i, 0, time.UTC)
	elems := []core.Elem{{Type: core.ElemAnnouncement, Timestamp: ts}}
	rec := core.NewElemRecord("test", "synth", core.DumpUpdates, ts, elems)
	return rec, &elems[0], nil
}

func (s *syntheticSource) Close() error { return nil }

func sortedStrings(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// TestOpenSingleFileWithInterval regresses the interval/meta-filter
// interaction: a singlefile source has no nominal dump time (zero
// Time), so it must survive interval meta-filtering and be filtered
// per record instead.
func TestOpenSingleFileWithInterval(t *testing.T) {
	dir, start := generateArchive(t, 18, 1)
	store := &archive.Store{Root: dir}
	metas, err := store.Scan()
	if err != nil {
		t.Fatal(err)
	}
	var updURL string
	for _, m := range metas {
		if m.Type == archive.DumpUpdates {
			updURL = m.URL
			break
		}
	}
	if updURL == "" {
		t.Fatal("no updates dump in archive")
	}
	s, err := bgpstream.Open(context.Background(),
		bgpstream.WithSource("singlefile", bgpstream.SourceOptions{"upd-file": updURL}),
		bgpstream.WithInterval(start, start.Add(time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 0
	for rec := range s.Records() {
		if rec.Project != "singlefile" || rec.Collector != "singlefile" {
			t.Fatalf("annotations = %s/%s", rec.Project, rec.Collector)
		}
		n++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("singlefile source with interval yielded nothing")
	}

	// With an explicit nominal time outside the interval, the dump is
	// meta-filtered away again.
	s2, err := bgpstream.Open(context.Background(),
		bgpstream.WithSource("singlefile", bgpstream.SourceOptions{
			"upd-file": updURL,
			"time":     "100", "duration": "5m", // ends long before start
		}),
		bgpstream.WithInterval(start, start.Add(time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for range s2.Records() {
		t.Fatal("out-of-interval singlefile dump yielded records")
	}
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRepairedEndToEnd drives the gap-repaired composite through
// the registry: a push feed is force-disconnected while replaying an
// archive exactly once, and the "repaired" source — rislive live half,
// directory backfill half, options forwarded through the live.*/
// backfill.* prefixes — must deliver the exact elem multiset of the
// uninterrupted replay, with the repair counters visible on the
// stream.
func TestOpenRepairedEndToEnd(t *testing.T) {
	dir, _ := generateArchive(t, 19, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Reference: the elem multiset of an uninterrupted archive read.
	refStream, err := bgpstream.Open(ctx,
		bgpstream.WithSource("directory", bgpstream.SourceOptions{"path": dir}))
	if err != nil {
		t.Fatal(err)
	}
	reference := make(map[string]int)
	refN := 0
	for rec, elem := range refStream.Elems() {
		b, err := json.Marshal(rislive.EncodeElem(rec.Project, rec.Collector, elem))
		if err != nil {
			t.Fatal(err)
		}
		reference[string(b)]++
		refN++
	}
	if err := refStream.Err(); err != nil {
		t.Fatal(err)
	}
	refStream.Close()
	if refN == 0 {
		t.Fatal("empty reference run")
	}

	feed := &rislive.Server{KeepAlive: 100 * time.Millisecond, BufferSize: 1 << 17}
	hs := httptest.NewServer(feed)
	defer hs.Close()
	go func() {
		// One pass over the archive with a forced disconnect at 40%:
		// completeness must come from the repair path. Publishing
		// starts only once the consumer is subscribed — elems
		// published before the first subscription are not a repairable
		// loss (the client has no watermark yet), they are simply
		// before the stream began.
		for feed.Stats().Subscribers == 0 && ctx.Err() == nil {
			time.Sleep(5 * time.Millisecond)
		}
		rs := core.NewStream(ctx, &core.Directory{Dir: dir}, core.Filters{})
		defer rs.Close()
		n := 0
		for ctx.Err() == nil {
			rec, elem, err := rs.NextElem()
			if err != nil {
				return
			}
			feed.Publish(rec.Project, rec.Collector, elem)
			if n++; n == 2*refN/5 {
				feed.DisconnectClients()
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	s, err := bgpstream.Open(ctx,
		bgpstream.WithSource("repaired", bgpstream.SourceOptions{
			"backfill":      "directory",
			"backfill.path": dir,
			"live.url":      hs.URL,
			"live.backoff":  "20ms", // reconnect fast relative to the replay pace
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	got := make(map[string]int)
	n := 0
	for rec, elem := range s.Elems() {
		b, err := json.Marshal(rislive.EncodeElem(rec.Project, rec.Collector, elem))
		if err != nil {
			t.Fatal(err)
		}
		got[string(b)]++
		if got[string(b)] > reference[string(b)] {
			t.Fatalf("duplicate elem at %d: %s", n, b)
		}
		if n++; n >= refN {
			break
		}
	}
	if n < refN {
		t.Fatalf("only %d/%d elems through repaired source (err: %v, stats: %+v, feed: %+v)",
			n, refN, s.Err(), s.SourceStats(), feed.Stats())
	}
	// refN elems received and none in excess of the reference count:
	// the multisets are identical — no duplicates, no holes.
	st := s.SourceStats()
	if st.LiveElems == 0 {
		t.Fatalf("SourceStats not wired through the repaired stream: %+v", st)
	}
	if st.Gaps < 1 || st.Repairs < 1 {
		t.Fatalf("forced disconnect repaired without gap accounting: %+v", st)
	}
}

// TestOpenWithRepairOption exercises the WithRepair form over
// WithSource, plus the composite error paths: repairing a pull source
// is rejected, and composite sub-options are validated.
func TestOpenWithRepairOption(t *testing.T) {
	dir, _ := generateArchive(t, 20, 1)

	if _, err := bgpstream.Open(context.Background(),
		bgpstream.WithSource("directory", bgpstream.SourceOptions{"path": dir}),
		bgpstream.WithRepair("directory", bgpstream.SourceOptions{"path": dir})); err == nil ||
		!strings.Contains(err.Error(), "push") {
		t.Errorf("repairing a pull source accepted (err = %v)", err)
	}

	// Repair tuning without a repair source would be silently dead
	// configuration (a cursor path that never persists); reject it.
	if _, err := bgpstream.Open(context.Background(),
		bgpstream.WithSource("directory", bgpstream.SourceOptions{"path": dir}),
		bgpstream.WithRepairOptions(bgpstream.RepairOptions{Concurrency: 2})); err == nil ||
		!strings.Contains(err.Error(), "WithRepair") {
		t.Errorf("WithRepairOptions without WithRepair accepted (err = %v)", err)
	}

	if _, err := bgpstream.OpenSource("repaired", bgpstream.SourceOptions{
		"backfill": "directory", "backfill.path": dir, "live.url": "http://x", "bogus": "y",
	}); err == nil || !strings.Contains(err.Error(), `no option "bogus"`) {
		t.Errorf("unknown composite option error = %v", err)
	}
	if _, err := bgpstream.OpenSource("repaired", bgpstream.SourceOptions{
		"backfill": "directory", "backfill.bogus": dir, "live.url": "http://x",
	}); err == nil || !strings.Contains(err.Error(), `no option "bogus"`) {
		t.Errorf("unknown forwarded option error = %v", err)
	}
	if _, err := bgpstream.OpenSource("repaired", bgpstream.SourceOptions{
		"live.url": "http://x",
	}); err == nil || !strings.Contains(err.Error(), `requires option "backfill"`) {
		t.Errorf("missing backfill error = %v", err)
	}

	// The WithRepair happy path over an in-process feed: spot-check
	// that elems flow and stats surface.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	feed := &rislive.Server{KeepAlive: 100 * time.Millisecond}
	hs := httptest.NewServer(feed)
	defer hs.Close()
	go func() {
		for ctx.Err() == nil {
			rs := core.NewStream(ctx, &core.Directory{Dir: dir}, core.Filters{})
			rislive.Replay(ctx, rs, feed, rislive.ReplayOptions{})
			rs.Close()
		}
	}()
	s, err := bgpstream.Open(ctx,
		bgpstream.WithSource("rislive", bgpstream.SourceOptions{"url": hs.URL}),
		bgpstream.WithRepair("directory", bgpstream.SourceOptions{"path": dir}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 0
	for range s.Elems() {
		if n++; n >= 200 {
			break
		}
	}
	if n < 200 {
		t.Fatalf("only %d elems through WithRepair (err: %v)", n, s.Err())
	}
	if st := s.SourceStats(); st.LiveElems == 0 {
		t.Fatalf("SourceStats empty through WithRepair: %+v", st)
	}
}
