// Property test of the decode stack's memory-ownership refactor: for
// randomized archives, elems decoded through the stream's shared
// per-reader bgp.Decoder (arena reuse across records) must be
// deep-equal to (a) a retained-copy baseline cloned at hand-out time —
// proving arena reuse never overwrites an elem already handed out —
// and (b) the fresh-decoder-per-record path (Record.Elems), proving
// old-vs-new decode equivalence record by record. Runs under -race in
// CI alongside the pipeline ordering property test.
package bgpstream_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"github.com/bgpstream-go/bgpstream/internal/core"
)

// elemEqual is the deep equality used by the equivalence properties:
// every field, with slice contents compared element-wise so arena
// backing differences can never mask (or fake) a mismatch.
func elemEqual(a, b *core.Elem) bool {
	if a.Type != b.Type || !a.Timestamp.Equal(b.Timestamp) ||
		a.PeerAddr != b.PeerAddr || a.PeerASN != b.PeerASN ||
		a.Prefix != b.Prefix || a.NextHop != b.NextHop ||
		a.OldState != b.OldState || a.NewState != b.NewState {
		return false
	}
	if !a.ASPath.Equal(b.ASPath) {
		return false
	}
	if len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	return true
}

func describeElem(e *core.Elem) string {
	return fmt.Sprintf("{%s %s peer=%s/%d pfx=%s nh=%s path=%q comm=%q states=%d->%d}",
		e.Type, e.Timestamp.UTC().Format("2006-01-02T15:04:05.000000"),
		e.PeerAddr, e.PeerASN, e.Prefix, e.NextHop,
		e.ASPath.String(), e.Communities.String(), e.OldState, e.NewState)
}

// collectStreamElems drains a directory stream elem by elem and
// returns two views of the same sequence: live (the elems exactly as
// handed out, retained without copying — they keep referencing the
// stream's decode arenas) and cloned (deep-copied at hand-out time,
// before the next pull could touch any scratch).
func collectStreamElems(t *testing.T, dir string, workers int) (live, cloned []core.Elem) {
	t.Helper()
	s := newDirStream(t, dir, workers)
	defer s.Close()
	for {
		_, e, err := s.NextElem()
		if err == io.EOF {
			return live, cloned
		}
		if err != nil {
			t.Fatalf("workers=%d: NextElem: %v", workers, err)
		}
		live = append(live, *e)
		cloned = append(cloned, e.Clone())
	}
}

// collectRecordElems drains the same stream record by record through
// Record.Elems — a throwaway decoder per record, the caller-owned
// (old-semantics) path — skipping undecodable payloads exactly as
// NextElem does.
func collectRecordElems(t *testing.T, dir string) []core.Elem {
	t.Helper()
	s := newDirStream(t, dir, 1)
	defer s.Close()
	var out []core.Elem
	for {
		rec, err := s.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("record pass: Next: %v", err)
		}
		es, err := rec.Elems()
		if err != nil {
			continue // undecodable payload: NextElem skips these too
		}
		out = append(out, es...)
	}
}

func newDirStream(t *testing.T, dir string, workers int) *core.Stream {
	t.Helper()
	s := core.NewStream(t.Context(), &core.Directory{Dir: dir}, core.Filters{})
	s.SetDecodeWorkers(workers)
	return s
}

func compareElemSeqs(t *testing.T, label string, got, want []core.Elem) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d elems, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !elemEqual(&got[i], &want[i]) {
			t.Fatalf("%s: elem %d differs:\n got %s\nwant %s",
				label, i, describeElem(&got[i]), describeElem(&want[i]))
		}
	}
}

// TestDecodeEquivalence is the ownership-refactor property test of
// ISSUE 9 (see file comment for the three properties).
func TestDecodeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20160901))
	for iter := 0; iter < 3; iter++ {
		t.Run(fmt.Sprintf("archive%d", iter), func(t *testing.T) {
			dir := generateRandomArchive(t, rng)
			if iter == 1 {
				truncateOneDump(t, dir, rng)
			}
			live, cloned := collectStreamElems(t, dir, 1)
			if len(cloned) == 0 {
				t.Fatal("sequential run produced no elems")
			}
			// (a) Retention: after the whole stream has been decoded
			// through the shared arenas, elems retained at hand-out time
			// still read back exactly as they did then. Any rewind or
			// overwrite of referenced arena memory fails here.
			compareElemSeqs(t, "retained-vs-cloned", live, cloned)
			// (b) Old-vs-new: the fresh-decoder-per-record path yields
			// the identical elem sequence.
			perRecord := collectRecordElems(t, dir)
			compareElemSeqs(t, "per-record-vs-stream", perRecord, cloned)
			// (c) The parallel pipeline (own decoder, prefetch workers)
			// matches the sequential baseline elem for elem, retained
			// elems included.
			pLive, pCloned := collectStreamElems(t, dir, 4)
			compareElemSeqs(t, "parallel-retained-vs-cloned", pLive, pCloned)
			compareElemSeqs(t, "parallel-vs-sequential", pCloned, cloned)
		})
	}
}
