// Command experiments regenerates the paper's tables and figures
// (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured records).
//
// Usage:
//
//	experiments -list
//	experiments -run fig6
//	experiments -run all -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id, or 'all'")
		list  = flag.Bool("list", false, "list experiment ids")
		seed  = flag.Int64("seed", 1, "deterministic seed")
		scale = flag.Float64("scale", 1.0, "workload scale factor")
		dir   = flag.String("dir", "", "workspace directory (default: temp)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.List() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "experiments: -run <id> or -list required")
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale, Dir: *dir}
	ids := []string{*run}
	if *run == "all" {
		ids = experiments.List()
	}
	failed := 0
	for _, id := range ids {
		t0 := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(res.Format())
		fmt.Printf("(%s in %s)\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
