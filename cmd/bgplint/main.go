// Command bgplint runs the repo's static-analysis suite
// (internal/lint): five analyzers that machine-enforce the hot-path
// allocation, EOF-comparison, metrics label-interning, goroutine/timer
// lifecycle, and lock layout invariants the ROADMAP ground rules
// state.
//
// Standalone, over go list patterns (default ./...):
//
//	go run ./cmd/bgplint ./...
//	bgplint -list
//	bgplint -run eofcompare,goleak ./internal/...
//
// As a go vet tool, so the suite also runs under the standard vet
// driver with compiler export data instead of from-source
// type-checking:
//
//	go build -o bgplint ./cmd/bgplint
//	go vet -vettool=$(pwd)/bgplint ./...
//
// Exit status: 0 clean, 2 findings, 1 operational error.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/bgpstream-go/bgpstream/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// executableID hashes the running binary, mimicking the build-ID
// stamp the go command reads from `tool -V=full` output to decide
// when cached vet results are stale.
func executableID() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%02x", h.Sum(nil)), nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bgplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	version := fs.String("V", "", "print version and exit (go vet tool handshake)")
	flagsJSON := fs.Bool("flags", false, "print analyzer flag definitions as JSON (go vet tool handshake)")
	list := fs.Bool("list", false, "list analyzers and exit")
	runNames := fs.String("run", "", "comma-separated subset of analyzers to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	switch {
	case *version != "":
		// The go command identifies vet tools by `tool -V=full` and
		// expects a content hash it can use as the tool's build ID.
		id, err := executableID()
		if err != nil {
			fmt.Fprintf(stderr, "bgplint: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "bgplint version devel comments-go-here buildID=%s\n", id)
		return 0
	case *flagsJSON:
		fmt.Fprintln(stdout, "[]")
		return 0
	case *list:
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *runNames != "" {
		analyzers = nil
		for _, name := range strings.Split(*runNames, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "bgplint: unknown analyzer %q (see -list)\n", name)
				return 1
			}
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()
	// go vet invokes the tool with a single *.cfg argument describing
	// one compiled package (the unitchecker protocol).
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.RunVetUnit(rest[0], stderr)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader()
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "bgplint: %v\n", err)
		return 1
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "bgplint: %v\n", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s\n", d)
		}
		findings += len(diags)
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "bgplint: %d finding(s) in %d package(s)\n", findings, len(pkgs))
		return 2
	}
	return 0
}
