package main

import (
	"strings"
	"testing"
)

// TestRepoIsLintClean is the suite's smoke test: the full analyzer set
// must exit clean over the repo itself (the module pattern makes the
// sweep independent of the test's working directory). Any finding here
// is a regression against an invariant the codebase already satisfies.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short mode")
	}
	var stdout, stderr strings.Builder
	code := run([]string{"github.com/bgpstream-go/bgpstream/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("bgplint exited %d on the repo\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if out := stdout.String(); out != "" {
		t.Fatalf("bgplint reported findings:\n%s", out)
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("bgplint -list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"eofcompare", "hotpathalloc", "obsvlabels", "goleak", "lockdiscipline"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("bgplint -list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestVersionHandshake(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("bgplint -V=full exited %d: %s", code, stderr.String())
	}
	// The go command parses this line to extract a build ID, so the
	// format is part of the vettool contract.
	if !strings.Contains(stdout.String(), "bgplint version") || !strings.Contains(stdout.String(), "buildID=") {
		t.Errorf("-V=full output is not a valid vettool handshake: %q", stdout.String())
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-run", "nope"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bgplint -run nope exited %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %q", stderr.String())
	}
}
