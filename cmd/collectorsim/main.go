// Command collectorsim generates RouteViews/RIPE-RIS-style MRT
// archives from a synthetic AS-level Internet, optionally serving
// them over HTTP with realistic publication delays so the whole
// BGPStream stack — broker, reader, corsaro, consumers — can run
// against live-looking data without network access.
//
// Examples:
//
//	# 24 hours of two collectors with background churn and a scripted
//	# hijack, then serve the archive on :8480:
//	collectorsim -out ./archive -hours 24 -churn 20 \
//	    -hijack 2h,1h -serve :8480
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/astopo"
	"github.com/bgpstream-go/bgpstream/internal/collector"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "collectorsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("collectorsim", flag.ContinueOnError)
	var (
		out     = fs.String("out", "./archive", "archive output directory")
		seed    = fs.Int64("seed", 1, "deterministic seed")
		hours   = fs.Int("hours", 8, "simulated duration")
		startS  = fs.String("start", "2016-03-01T00:00:00Z", "simulation start (RFC 3339)")
		vps     = fs.Int("vps", 8, "vantage points per collector")
		churn   = fs.Float64("churn", 10, "background flaps per hour")
		stubs   = fs.Int("stubs", 200, "stub AS count")
		serve   = fs.String("serve", "", "serve the archive over HTTP on this address after generating")
		delay   = fs.Duration("publish-delay", 0, "publication delay when serving")
		hijack  = fs.String("hijack", "", "inject a hijack: offset,duration (e.g. 2h,1h)")
		outage  = fs.String("outage", "", "inject a country outage: country,offset,duration (e.g. IQ,2h,1h)")
		rtbhArg = fs.String("rtbh", "", "inject an RTBH event: offset,duration")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil // -h: usage already printed, exit clean
		}
		return err
	}

	start, err := time.Parse(time.RFC3339, *startS)
	if err != nil {
		return fmt.Errorf("invalid -start: %w", err)
	}
	params := astopo.DefaultParams(*seed)
	params.StubCount = *stubs
	topo := astopo.Generate(params)
	colls := collector.DefaultCollectors(topo, *vps)

	var events []collector.Event
	if *hijack != "" {
		off, dur, err := parseOffsetDuration(*hijack)
		if err != nil {
			return fmt.Errorf("-hijack: %w", err)
		}
		stubsList := topo.Stubs()
		victim, attacker := stubsList[0], stubsList[len(stubsList)/2]
		events = append(events, collector.Hijack{
			Start: start.Add(off), End: start.Add(off + dur),
			Attacker: attacker, Prefixes: topo.AS(victim).Prefixes[:1],
		})
		log.Printf("hijack: AS%d announces %s (victim AS%d) at +%s for %s",
			attacker, topo.AS(victim).Prefixes[0], victim, off, dur)
	}
	if *outage != "" {
		parts := strings.SplitN(*outage, ",", 3)
		if len(parts) != 3 {
			return fmt.Errorf("-outage wants country,offset,duration")
		}
		off, err := time.ParseDuration(parts[1])
		if err != nil {
			return fmt.Errorf("-outage offset: %w", err)
		}
		dur, err := time.ParseDuration(parts[2])
		if err != nil {
			return fmt.Errorf("-outage duration: %w", err)
		}
		victims := topo.ASesInCountry(parts[0])
		if len(victims) == 0 {
			return fmt.Errorf("no ASes in country %q", parts[0])
		}
		events = append(events, collector.Outage{
			Start: start.Add(off), End: start.Add(off + dur), ASNs: victims,
		})
		log.Printf("outage: %d ASes in %s at +%s for %s", len(victims), parts[0], off, dur)
	}
	if *rtbhArg != "" {
		off, dur, err := parseOffsetDuration(*rtbhArg)
		if err != nil {
			return fmt.Errorf("-rtbh: %w", err)
		}
		ev, desc, err := collector.DefaultRTBH(topo, start.Add(off), dur)
		if err != nil {
			return err
		}
		events = append(events, ev)
		log.Printf("rtbh: %s", desc)
	}

	sim, err := collector.NewSimulator(collector.Config{
		Topo:              topo,
		Collectors:        colls,
		Events:            events,
		ChurnFlapsPerHour: *churn,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}
	store, err := archive.NewStore(*out)
	if err != nil {
		return err
	}
	t0 := time.Now()
	metas, err := sim.GenerateArchive(store, start, start.Add(time.Duration(*hours)*time.Hour))
	if err != nil {
		return err
	}
	log.Printf("wrote %d dump files to %s in %s", len(metas), *out, time.Since(t0).Round(time.Millisecond))

	if *serve == "" {
		return nil
	}
	h := &archive.Server{Store: store, PublishDelay: *delay}
	log.Printf("serving archive on %s (publish delay %s)", *serve, *delay)
	return http.ListenAndServe(*serve, h)
}

func parseOffsetDuration(s string) (time.Duration, time.Duration, error) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want offset,duration")
	}
	off, err := time.ParseDuration(parts[0])
	if err != nil {
		return 0, 0, err
	}
	dur, err := time.ParseDuration(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return off, dur, nil
}
