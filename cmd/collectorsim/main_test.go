package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/core"
)

func TestParseOffsetDuration(t *testing.T) {
	off, dur, err := parseOffsetDuration("2h,30m")
	if err != nil {
		t.Fatal(err)
	}
	if off != 2*time.Hour || dur != 30*time.Minute {
		t.Fatalf("got %v,%v", off, dur)
	}
	for _, bad := range []string{"", "2h", "x,1h", "1h,y"} {
		if _, _, err := parseOffsetDuration(bad); err == nil {
			t.Errorf("parseOffsetDuration(%q) accepted", bad)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-start", "not-a-time"}); err == nil {
		t.Fatal("bad -start accepted")
	}
	if err := run([]string{"-hijack", "junk", "-out", t.TempDir()}); err == nil {
		t.Fatal("bad -hijack accepted")
	}
}

// TestRunEndToEnd generates a small archive through the real command
// path and reads it back with a core stream.
func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "archive")
	err := run([]string{
		"-out", out,
		"-hours", "1",
		"-vps", "2",
		"-stubs", "60",
		"-churn", "30",
		"-seed", "7",
		"-rtbh", "10m,20m",
	})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(out)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no archive written: %v", err)
	}

	s := core.NewStream(context.Background(), &core.Directory{Dir: out}, core.Filters{})
	defer s.Close()
	elems, rtbh := 0, 0
	for {
		_, e, err := s.NextElem()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		elems++
		for _, c := range e.Communities {
			if c.Value() == 666 {
				rtbh++
				break
			}
		}
	}
	if elems == 0 {
		t.Fatal("archive produced no elems")
	}
	if rtbh == 0 {
		t.Fatal("-rtbh event left no black-holing communities in the stream")
	}
}
