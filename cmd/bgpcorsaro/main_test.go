package main

import (
	"testing"
)

func TestBuildPlugin(t *testing.T) {
	p, err := buildPlugin("stats", "")
	if err != nil || p.Name() != "stats" {
		t.Fatalf("stats: %v %v", p, err)
	}
	p, err = buildPlugin("pfxmonitor:10.0.0.0/8;192.0.2.0/24", "")
	if err != nil || p.Name() != "pfxmonitor" {
		t.Fatalf("pfxmonitor: %v %v", p, err)
	}
	p, err = buildPlugin("rt", "")
	if err != nil || p.Name() != "routing-tables" {
		t.Fatalf("rt: %v %v", p, err)
	}
	for _, bad := range []string{"pfxmonitor", "pfxmonitor:junk", "nope"} {
		if _, err := buildPlugin(bad, ""); err == nil {
			t.Errorf("buildPlugin(%q) accepted", bad)
		}
	}
}
