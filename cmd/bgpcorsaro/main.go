// Command bgpcorsaro continuously extracts derived data from a BGP
// stream in regular time bins through a plugin pipeline (§6.1).
//
// Plugins:
//
//	stats                    per-collector record/elem counters
//	pfxmonitor:<p1;p2;...>   prefix-set monitoring (Figure 6)
//	rt                       routing-tables plugin publishing diffs to
//	                         a message-bus (requires -mq)
//
// Example (the Figure 6 experiment):
//
//	bgpcorsaro -d ./archive -i 5m \
//	    -plugin 'pfxmonitor:20.1.0.0/16;20.2.0.0/16' -plugin stats
//
// The stream is scoped with -c <collector> or a full BGPStream v2
// filter string: -filter "collector rrc00 and type updates".
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/corsaro"
	"github.com/bgpstream-go/bgpstream/internal/mq"
	"github.com/bgpstream-go/bgpstream/internal/rtables"

	bgpstream "github.com/bgpstream-go/bgpstream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bgpcorsaro:", err)
		os.Exit(1)
	}
}

type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func run() error {
	var (
		brokerURL = flag.String("broker", "", "BGPStream Broker URL")
		dir       = flag.String("d", "", "local archive directory")
		interval  = flag.Duration("i", 5*time.Minute, "time bin size")
		window    = flag.String("w", "", "time window start[,end] unix seconds")
		mqAddr    = flag.String("mq", "", "message-bus address for the rt plugin")
		collector = flag.String("c", "", "restrict to one collector")
		filterStr = flag.String("filter", "", `BGPStream v2 filter string, e.g. "collector rrc00 and type updates" (exclusive with -c)`)
		fetchRet  = flag.Int("fetch-retries", 0, "attempts per transient network failure on dump fetches and broker queries (0 = default 3)")
	)
	var pluginSpecs listFlag
	flag.Var(&pluginSpecs, "plugin", "plugin spec (repeatable): stats | pfxmonitor:<p;p> | rt")
	flag.Parse()

	if *filterStr != "" && *collector != "" {
		return fmt.Errorf("-filter cannot be combined with -c; add `collector %s` to the filter string instead", *collector)
	}
	var opts []bgpstream.Option
	if *filterStr != "" {
		opts = append(opts, bgpstream.WithFilterString(*filterStr))
	} else if *collector != "" {
		opts = append(opts, bgpstream.WithFilters(core.Filters{Collectors: []string{*collector}}))
	}
	if *window != "" {
		parts := strings.SplitN(*window, ",", 2)
		var startSec, endSec int64
		if _, err := fmt.Sscanf(parts[0], "%d", &startSec); err != nil {
			return fmt.Errorf("invalid -w: %w", err)
		}
		start := time.Unix(startSec, 0).UTC()
		if len(parts) == 2 {
			if _, err := fmt.Sscanf(parts[1], "%d", &endSec); err != nil {
				return fmt.Errorf("invalid -w end: %w", err)
			}
			opts = append(opts, bgpstream.WithInterval(start, time.Unix(endSec, 0).UTC()))
		} else {
			opts = append(opts, bgpstream.WithLive(start))
		}
	}
	srcOpts := bgpstream.SourceOptions{}
	if *fetchRet != 0 {
		srcOpts["retry"] = strconv.Itoa(*fetchRet)
	}
	switch {
	case *dir != "":
		srcOpts["path"] = *dir
		opts = append(opts, bgpstream.WithSource("directory", srcOpts))
	case *brokerURL != "":
		srcOpts["url"] = *brokerURL
		opts = append(opts, bgpstream.WithSource("broker", srcOpts))
	default:
		return fmt.Errorf("one of -broker, -d is required")
	}

	if len(pluginSpecs) == 0 {
		pluginSpecs = []string{"stats"}
	}
	var plugins []corsaro.Plugin
	for _, spec := range pluginSpecs {
		p, err := buildPlugin(spec, *mqAddr)
		if err != nil {
			return err
		}
		plugins = append(plugins, p)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	stream, err := bgpstream.Open(ctx, opts...)
	if err != nil {
		return err
	}
	defer stream.Close()
	runner := &corsaro.Runner{Source: stream, Interval: *interval, Plugins: plugins}
	if err := runner.Run(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bgpcorsaro: done (%d invalid records, %d decode errors)\n",
		runner.InvalidRecords, runner.DecodeErrors)
	return nil
}

func buildPlugin(spec, mqAddr string) (corsaro.Plugin, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "stats":
		return corsaro.NewStats(os.Stdout), nil
	case "pfxmonitor":
		if arg == "" {
			return nil, fmt.Errorf("pfxmonitor requires prefixes: pfxmonitor:<p;p>")
		}
		var prefixes []netip.Prefix
		for _, tok := range strings.Split(arg, ";") {
			p, err := netip.ParsePrefix(strings.TrimSpace(tok))
			if err != nil {
				return nil, fmt.Errorf("pfxmonitor prefix %q: %w", tok, err)
			}
			prefixes = append(prefixes, p)
		}
		return corsaro.NewPfxMonitor(prefixes, os.Stdout), nil
	case "rt":
		rt := rtables.New()
		rt.SnapshotEvery = 60
		if mqAddr != "" {
			cl, err := mq.Dial(mqAddr)
			if err != nil {
				return nil, fmt.Errorf("rt plugin: %w", err)
			}
			rt.Publisher = &mq.RTPublisher{Producer: cl}
		}
		return rt, nil
	default:
		return nil, fmt.Errorf("unknown plugin %q", name)
	}
}
