package main

import (
	"bufio"
	"io"
	"net/netip"
)

// parseNetipPrefix parses a CIDR prefix, accepting bare addresses as
// host prefixes for convenience.
func parseNetipPrefix(s string) (netip.Prefix, error) {
	if p, err := netip.ParsePrefix(s); err == nil {
		return p, nil
	}
	a, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Prefix{}, err
	}
	return a.Prefix(a.BitLen())
}

// newBufferedWriter wraps the output stream: bgpreader can emit
// millions of lines, so write through a sizeable buffer.
func newBufferedWriter(w io.Writer) *bufio.Writer {
	return bufio.NewWriterSize(w, 1<<20)
}
