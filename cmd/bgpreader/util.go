package main

import (
	"bufio"
	"net/netip"
	"os"
)

// parseNetipPrefix parses a CIDR prefix, accepting bare addresses as
// host prefixes for convenience.
func parseNetipPrefix(s string) (netip.Prefix, error) {
	if p, err := netip.ParsePrefix(s); err == nil {
		return p, nil
	}
	a, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Prefix{}, err
	}
	return a.Prefix(a.BitLen())
}

// newBufferedStdout wraps stdout: bgpreader can emit millions of
// lines, so write through a sizeable buffer.
func newBufferedStdout() *bufio.Writer {
	return bufio.NewWriterSize(os.Stdout, 1<<20)
}
