// Command bgpreader outputs BGPStream records and elems in ASCII — a
// drop-in replacement for the classic bgpdump tool (§4.1) that adds
// multi-file/multi-collector/multi-project reading, live mode, and
// filters.
//
// Examples:
//
//	# all updates about sub-prefixes of 192.0.0.0/8 since a time,
//	# following new data forever (live mode):
//	bgpreader -broker http://localhost:8472 -w 1463011200 -t updates -k 192.0.0.0/8
//
//	# historical window over a local archive, bgpdump -m output:
//	bgpreader -d ./archive -w 1438415400,1438416600 -m
//
//	# follow a push feed (RIS Live-style SSE, e.g. bgplivesrv) with
//	# millisecond latency instead of polling for dumps:
//	bgpreader -ris-live http://localhost:8481/v1/stream -k 192.0.0.0/8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/bgpdump"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/rislive"

	bgpstream "github.com/bgpstream-go/bgpstream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bgpreader:", err)
		os.Exit(1)
	}
}

type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func run() error {
	var (
		brokerURL = flag.String("broker", "", "BGPStream Broker URL (default data interface)")
		dir       = flag.String("d", "", "local archive directory data interface")
		csv       = flag.String("csv", "", "CSV dump-index data interface")
		risLive   = flag.String("ris-live", "", "RIS Live-style SSE feed URL (push data interface)")
		risStale  = flag.Duration("ris-live-stale", 0, "reconnect when feed messages lag the clock by this much (0 disables; useless on historical replays)")
		window    = flag.String("w", "", "time window: start[,end] unix seconds; omit end for live mode")
		types     = flag.String("t", "", "dump type filter: ribs or updates")
		machine   = flag.Bool("m", false, "bgpdump -m compatible output (elems only)")
		records   = flag.Bool("r", false, "print one line per record instead of per elem")
		elemTypes = flag.String("e", "", "elem type filter: any of A,W,R,S (comma separated)")
	)
	var projects, collectors, prefixes, communities, peers listFlag
	flag.Var(&projects, "p", "project filter (repeatable)")
	flag.Var(&collectors, "c", "collector filter (repeatable)")
	flag.Var(&prefixes, "k", "prefix filter, any overlap (repeatable)")
	flag.Var(&communities, "y", "community filter asn:value with * wildcards (repeatable)")
	flag.Var(&peers, "j", "peer ASN filter (repeatable)")
	flag.Parse()

	filters := core.Filters{Projects: projects, Collectors: collectors}
	if *types != "" {
		dt := core.DumpType(*types)
		if !dt.Valid() {
			return fmt.Errorf("invalid -t %q", *types)
		}
		filters.DumpTypes = []core.DumpType{dt}
	}
	if *window != "" {
		start, end, live, err := parseWindow(*window)
		if err != nil {
			return err
		}
		filters.Start, filters.End, filters.Live = start, end, live
	}
	for _, p := range prefixes {
		pf, err := parsePrefix(p)
		if err != nil {
			return err
		}
		filters.Prefixes = append(filters.Prefixes, pf)
	}
	for _, c := range communities {
		cf, err := bgpstream.ParseCommunityFilter(c)
		if err != nil {
			return err
		}
		filters.Communities = append(filters.Communities, cf)
	}
	for _, p := range peers {
		asn, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return fmt.Errorf("invalid -j %q", p)
		}
		filters.PeerASNs = append(filters.PeerASNs, uint32(asn))
	}
	if *elemTypes != "" {
		for _, tok := range strings.Split(*elemTypes, ",") {
			switch strings.TrimSpace(strings.ToUpper(tok)) {
			case "A":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemAnnouncement)
			case "W":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemWithdrawal)
			case "R":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemRIB)
			case "S":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemPeerState)
			default:
				return fmt.Errorf("invalid -e token %q", tok)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var stream *bgpstream.Stream
	if *risLive != "" {
		// Push mode: subscribe upstream with the server-enforceable
		// filter dimensions; the stream re-applies everything locally.
		client := bgpstream.NewRISLiveClient(*risLive, rislive.SubscriptionFromFilters(filters))
		client.Staleness = *risStale
		// Surface connection lifecycle on stderr: without this a bad
		// URL retries forever in silence.
		client.Logf = log.Printf
		stream = bgpstream.NewLiveStream(ctx, client, filters)
	} else {
		var di core.DataInterface
		switch {
		case *dir != "":
			di = &core.Directory{Dir: *dir}
		case *csv != "":
			di = &core.CSVFile{Path: *csv}
		case *brokerURL != "":
			di = bgpstream.NewBrokerClient(*brokerURL, filters)
		default:
			return fmt.Errorf("one of -broker, -d, -csv, -ris-live is required")
		}
		stream = bgpstream.NewStream(ctx, di, filters)
	}
	defer stream.Close()

	out := newBufferedStdout()
	defer out.Flush()
	// In live modes lines trickle in; flushing per line keeps output
	// latency at the feed's latency instead of the buffer's fill time.
	live := *risLive != "" || filters.Live
	for {
		if *records {
			rec, err := stream.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				if ctx.Err() != nil {
					return nil // clean interrupt
				}
				return err
			}
			fmt.Fprintln(out, bgpdump.FormatRecord(rec))
			if live {
				out.Flush()
			}
			continue
		}
		rec, elem, err := stream.NextElem()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if *machine {
			fmt.Fprintln(out, bgpdump.FormatElem(rec, elem))
		} else {
			fmt.Fprintln(out, bgpdump.FormatElemVerbose(rec, elem))
		}
		if live {
			out.Flush()
		}
	}
}

func parseWindow(s string) (start, end time.Time, live bool, err error) {
	parts := strings.SplitN(s, ",", 2)
	sec, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return start, end, false, fmt.Errorf("invalid -w start %q", parts[0])
	}
	start = time.Unix(sec, 0).UTC()
	if len(parts) == 1 {
		return start, time.Time{}, true, nil
	}
	esec, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || esec < sec {
		return start, end, false, fmt.Errorf("invalid -w end %q", parts[1])
	}
	return start, time.Unix(esec, 0).UTC(), false, nil
}

func parsePrefix(s string) (core.PrefixFilter, error) {
	p, err := parseNetipPrefix(s)
	if err != nil {
		return core.PrefixFilter{}, fmt.Errorf("invalid -k %q: %w", s, err)
	}
	return core.PrefixFilter{Prefix: p, Match: core.MatchAny}, nil
}
