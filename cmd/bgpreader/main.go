// Command bgpreader outputs BGPStream records and elems in ASCII — a
// drop-in replacement for the classic bgpdump tool (§4.1) that adds
// multi-file/multi-collector/multi-project reading, live mode, and
// filters.
//
// Filters are given either as one declarative BGPStream v2 filter
// string (-filter) or as the classic per-dimension flags; the two
// styles cannot be mixed.
//
// Examples:
//
//	# all updates about sub-prefixes of 192.0.0.0/8 since a time,
//	# following new data forever (live mode):
//	bgpreader -broker http://localhost:8472 -w 1463011200 \
//	    -filter "type updates and prefix 192.0.0.0/8"
//
//	# the same with classic flags:
//	bgpreader -broker http://localhost:8472 -w 1463011200 -t updates -k 192.0.0.0/8
//
//	# historical window over a local archive, bgpdump -m output:
//	bgpreader -d ./archive -w 1438415400,1438416600 -m
//
//	# follow a push feed (RIS Live-style SSE, e.g. bgplivesrv) with
//	# millisecond latency instead of polling for dumps:
//	bgpreader -ris-live http://localhost:8481/v1/stream -filter "prefix 192.0.0.0/8"
//
//	# the same feed with completeness restored: loss windows
//	# (reconnects, server-side drops) are backfilled from the archive
//	# and spliced in, in time order; -v prints the gap/repair counters:
//	bgpreader -ris-live http://localhost:8481/v1/stream -repair -d ./archive -v
//
//	# the same run with the ops plane on a side listener — Prometheus
//	# /metrics, /healthz, /sources, /debug/pprof/:
//	bgpreader -ris-live http://localhost:8481/v1/stream -metrics-addr 127.0.0.1:9481
//
//	# list the source registry (names, kinds, options):
//	bgpreader -show-sources
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/bgpdump"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/obsv"

	bgpstream "github.com/bgpstream-go/bgpstream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bgpreader:", err)
		os.Exit(1)
	}
}

type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// legacyFilterFlags collects the classic per-dimension flags so the
// conflict with -filter can be reported precisely.
type legacyFilterFlags struct {
	types       string
	elemTypes   string
	projects    listFlag
	collectors  listFlag
	prefixes    listFlag
	communities listFlag
	peers       listFlag
}

// used returns the names of every legacy filter flag that was set.
func (l *legacyFilterFlags) used() []string {
	var names []string
	if l.types != "" {
		names = append(names, "-t")
	}
	if l.elemTypes != "" {
		names = append(names, "-e")
	}
	for _, f := range []struct {
		name string
		vals listFlag
	}{{"-p", l.projects}, {"-c", l.collectors}, {"-k", l.prefixes}, {"-y", l.communities}, {"-j", l.peers}} {
		if len(f.vals) > 0 {
			names = append(names, f.name)
		}
	}
	return names
}

// checkFilterConflict rejects mixing -filter with legacy flags: the
// filter string is authoritative and silently merging the two styles
// would hide typos.
func checkFilterConflict(filterStr string, legacy *legacyFilterFlags) error {
	if filterStr == "" {
		return nil
	}
	if used := legacy.used(); len(used) > 0 {
		return fmt.Errorf("-filter cannot be combined with the per-dimension filter flags (%s); express the whole filter in one string",
			strings.Join(used, ", "))
	}
	return nil
}

// filters builds core.Filters from the legacy flags.
func (l *legacyFilterFlags) filters() (core.Filters, error) {
	filters := core.Filters{Projects: l.projects, Collectors: l.collectors}
	if l.types != "" {
		dt := core.DumpType(l.types)
		if !dt.Valid() {
			return filters, fmt.Errorf("invalid -t %q", l.types)
		}
		filters.DumpTypes = []core.DumpType{dt}
	}
	for _, p := range l.prefixes {
		pf, err := parsePrefix(p)
		if err != nil {
			return filters, err
		}
		filters.Prefixes = append(filters.Prefixes, pf)
	}
	for _, c := range l.communities {
		cf, err := bgpstream.ParseCommunityFilter(c)
		if err != nil {
			return filters, err
		}
		filters.Communities = append(filters.Communities, cf)
	}
	for _, p := range l.peers {
		asn, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return filters, fmt.Errorf("invalid -j %q", p)
		}
		filters.PeerASNs = append(filters.PeerASNs, uint32(asn))
	}
	if l.elemTypes != "" {
		for _, tok := range strings.Split(l.elemTypes, ",") {
			switch strings.TrimSpace(strings.ToUpper(tok)) {
			case "A":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemAnnouncement)
			case "W":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemWithdrawal)
			case "R":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemRIB)
			case "S":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemPeerState)
			default:
				return filters, fmt.Errorf("invalid -e token %q", tok)
			}
		}
	}
	return filters, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bgpreader", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		brokerURL  = fs.String("broker", "", "BGPStream Broker URL (default data interface)")
		dir        = fs.String("d", "", "local archive directory data interface")
		csv        = fs.String("csv", "", "CSV dump-index data interface")
		risLive    = fs.String("ris-live", "", "RIS Live-style SSE feed URL (push data interface)")
		risStale   = fs.Duration("ris-live-stale", 0, "reconnect when feed messages lag the clock by this much (0 disables; useless on historical replays)")
		repair     = fs.Bool("repair", false, "backfill push-feed loss windows (reconnects, server drops) from the pull source given by -broker/-d/-csv; requires -ris-live")
		repairCur  = fs.String("repair-cursor", "", "repair cursor file: persist the completeness watermark and unrepaired windows so repairs survive restarts (requires -repair)")
		repairConc = fs.Int("repair-concurrency", 0, "backfill fetches in flight at once (0 = default 2; requires -repair)")
		decodeWrk  = fs.Int("decode-workers", 0, "parallel ingest: dump files of an overlap partition decoded concurrently (0 = GOMAXPROCS, 1 = sequential; pull sources only)")
		readahead  = fs.Int("readahead", 0, "per-dump-file decoded-record readahead bound (0 = default 4096; pull sources only)")
		fetchRetry = fs.Int("fetch-retries", 0, "attempts per transient network failure on dump fetches and broker queries (0 = default 3; pull sources only)")
		window     = fs.String("w", "", "time window: start[,end] unix seconds; omit end for live mode")
		filterStr  = fs.String("filter", "", `BGPStream v2 filter string, e.g. "collector rrc00 and prefix more 10.0.0.0/8 and elemtype announcements" (exclusive with -p/-c/-t/-e/-k/-y/-j)`)
		machine    = fs.Bool("m", false, "bgpdump -m compatible output (elems only)")
		records    = fs.Bool("r", false, "print one line per record instead of per elem")
		stopAfter  = fs.Int("n", 0, "stop after printing this many lines (0 = unbounded; bounds live runs)")
		verbose    = fs.Bool("v", false, "verbose: print the canonical filter string and source on stderr at startup, and the source completeness and pipeline counters at exit")
		metricsFl  = fs.String("metrics-addr", "", "serve the ops plane — /metrics (Prometheus text), /healthz, /sources, /debug/pprof/ — on this extra listen address")
		showSrcs   = fs.Bool("show-sources", false, "print the source registry (name, kind, options) with per-stream health, then exit")
	)
	var legacy legacyFilterFlags
	fs.StringVar(&legacy.types, "t", "", "dump type filter: ribs or updates")
	fs.StringVar(&legacy.elemTypes, "e", "", "elem type filter: any of A,W,R,S (comma separated)")
	fs.Var(&legacy.projects, "p", "project filter (repeatable)")
	fs.Var(&legacy.collectors, "c", "collector filter (repeatable)")
	fs.Var(&legacy.prefixes, "k", "prefix filter, any overlap (repeatable)")
	fs.Var(&legacy.communities, "y", "community filter asn:value with * wildcards (repeatable)")
	fs.Var(&legacy.peers, "j", "peer ASN filter (repeatable)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; a help request is not a failure
		}
		return err
	}

	if *showSrcs {
		return printSources(stdout)
	}
	if err := checkFilterConflict(*filterStr, &legacy); err != nil {
		return err
	}
	if !*repair && (*repairCur != "" || *repairConc != 0) {
		return fmt.Errorf("-repair-cursor and -repair-concurrency tune the repair pipeline: they require -repair")
	}
	var filterOpt bgpstream.Option
	if *filterStr != "" {
		filterOpt = bgpstream.WithFilterString(*filterStr)
	} else {
		filters, err := legacy.filters()
		if err != nil {
			return err
		}
		filterOpt = bgpstream.WithFilters(filters)
	}
	opts := []bgpstream.Option{filterOpt}

	if *window != "" {
		start, end, live, err := parseWindow(*window)
		if err != nil {
			return err
		}
		if live {
			opts = append(opts, bgpstream.WithLive(start))
		} else {
			opts = append(opts, bgpstream.WithInterval(start, end))
		}
	}

	// Every transport goes through the unified source registry. The
	// pull flags name the backfill source when -repair wraps a push
	// feed, the main source otherwise.
	pullName, pullOpts := "", bgpstream.SourceOptions(nil)
	switch {
	case *dir != "":
		pullName, pullOpts = "directory", bgpstream.SourceOptions{"path": *dir}
	case *csv != "":
		pullName, pullOpts = "csvfile", bgpstream.SourceOptions{"path": *csv}
	case *brokerURL != "":
		pullName, pullOpts = "broker", bgpstream.SourceOptions{"url": *brokerURL}
	}
	if *decodeWrk != 0 || *readahead != 0 || *fetchRetry != 0 {
		// The pull source must actually be in the data path: it is the
		// main source, or the backfill side of -repair. Named alongside
		// -ris-live without -repair it is ignored entirely, and the
		// flags would silently do nothing.
		if pullName == "" || (*risLive != "" && !*repair) {
			return fmt.Errorf("-decode-workers, -readahead and -fetch-retries tune the dump-file ingest pipeline: they require a pull source (-broker, -d or -csv) used as the main source or as the -repair backfill")
		}
		if *decodeWrk != 0 {
			pullOpts["decode-workers"] = strconv.Itoa(*decodeWrk)
		}
		if *readahead != 0 {
			pullOpts["readahead"] = strconv.Itoa(*readahead)
		}
		if *fetchRetry != 0 {
			pullOpts["retry"] = strconv.Itoa(*fetchRetry)
		}
	}
	var srcName string
	switch {
	case *risLive != "":
		srcName = "rislive"
		// "log" surfaces connection lifecycle on stderr: without it a
		// bad URL retries forever in silence.
		srcOpts := bgpstream.SourceOptions{"url": *risLive, "stale": risStale.String(), "log": "stderr"}
		opts = append(opts, bgpstream.WithSource(srcName, srcOpts))
		if *repair {
			if pullName == "" {
				return fmt.Errorf("-repair needs a pull source (-broker, -d or -csv) to backfill from")
			}
			srcName += "+" + pullName
			opts = append(opts,
				bgpstream.WithRepair(pullName, pullOpts),
				bgpstream.WithRepairOptions(bgpstream.RepairOptions{
					Concurrency: *repairConc,
					CursorPath:  *repairCur,
				}))
		}
	case *repair:
		return fmt.Errorf("-repair wraps a push feed: it requires -ris-live")
	case pullName != "":
		srcName = pullName
		opts = append(opts, bgpstream.WithSource(pullName, pullOpts))
	default:
		return fmt.Errorf("one of -broker, -d, -csv, -ris-live is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *metricsFl != "" {
		ln, err := net.Listen("tcp", *metricsFl)
		if err != nil {
			return err
		}
		msrv := &http.Server{Handler: bgpstream.MetricsHandler(true)}
		go msrv.Serve(ln)
		defer msrv.Close()
		if *verbose {
			fmt.Fprintf(stderr, "bgpreader: ops plane on http://%s/metrics\n", ln.Addr())
		}
	}

	stream, err := bgpstream.Open(ctx, opts...)
	if err != nil {
		return err
	}
	defer stream.Close()

	if *verbose {
		canonical := stream.Filters().String()
		if canonical == "" {
			canonical = "<match everything>"
		}
		fmt.Fprintf(stderr, "bgpreader: source %s, filter: %s\n", srcName, canonical)
	}

	out := newBufferedWriter(stdout)
	defer out.Flush()
	// In live modes lines trickle in; flushing per line keeps output
	// latency at the feed's latency instead of the buffer's fill time.
	live := *risLive != "" || stream.Filters().Live
	printed := 0
	emit := func(line string) bool {
		fmt.Fprintln(out, line)
		if live {
			out.Flush()
		}
		printed++
		return *stopAfter == 0 || printed < *stopAfter
	}
	if *records {
		for rec := range stream.Records() {
			if !emit(bgpdump.FormatRecord(rec)) {
				break
			}
		}
	} else {
		for rec, elem := range stream.Elems() {
			var line string
			if *machine {
				line = bgpdump.FormatElem(rec, elem)
			} else {
				line = bgpdump.FormatElemVerbose(rec, elem)
			}
			if !emit(line) {
				break
			}
		}
	}
	if *verbose {
		// Close first: it quiesces the producer goroutines, so the
		// completeness counters and the registry totals below are final
		// values instead of racing with in-flight updates. The deferred
		// Close is a no-op after this.
		stream.Close()
		printSourceStats(stderr, stream.SourceStats())
		printPipelineCounters(stderr)
	}
	if err := stream.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil // clean EOF, -n bound, or interrupt
}

// printSources lists the source registry with per-stream health — the
// CLI twin of the /sources endpoint.
func printSources(w io.Writer) error {
	for _, src := range bgpstream.Sources() {
		fmt.Fprintf(w, "%-10s %-4s %s\n", src.Name, src.Kind, src.Description)
		for _, opt := range src.Options {
			suffix := ""
			if opt.Default != "" {
				suffix = " (default " + opt.Default + ")"
			}
			if opt.Required {
				suffix += " (required)"
			}
			fmt.Fprintf(w, "    option %-16s %s%s\n", opt.Name, opt.Description, suffix)
		}
		for _, h := range src.Health {
			fmt.Fprintf(w, "    open since %s: %d elems, stats %+v\n",
				h.OpenedAt.UTC().Format(time.RFC3339), h.Elems, h.Stats)
		}
	}
	return nil
}

// printPipelineCounters reports the process-wide pipeline totals from
// the metrics registry — the same numbers /metrics exposes — read
// after the stream is closed so they are settled, not racing.
func printPipelineCounters(w io.Writer) {
	show := map[string]string{
		"bgpstream_stream_elems_total":             "elems",
		"bgpstream_stream_filter_rejected_total":   "filter-rejected",
		"bgpstream_prefetch_records_decoded_total": "records-decoded",
		"bgpstream_prefetch_corrupt_dumps_total":   "corrupt-dumps",
	}
	var parts []string
	for _, p := range obsv.Default.Gather() {
		if label, ok := show[p.Family]; ok {
			parts = append(parts, fmt.Sprintf("%s=%.0f", label, p.Value))
		}
	}
	fmt.Fprintf(w, "bgpreader: pipeline: %s\n", strings.Join(parts, " "))
}

// printSourceStats reports the completeness and fault-tolerance
// counters at shutdown: push-feed repair stats (all zero on pull
// sources, which are complete by construction) plus the pull-side
// fetch retry/resume/breaker stats.
func printSourceStats(w io.Writer, st bgpstream.SourceStats) {
	fmt.Fprintf(w,
		"bgpreader: source stats: live=%d reconnects=%d upstream-dropped=%d gaps=%d "+
			"repairs=%d repair-failures=%d repairs-abandoned=%d repairs-queued=%d repairs-in-flight=%d "+
			"backfilled=%d dup-dropped=%d holdback-overflows=%d\n",
		st.LiveElems, st.Reconnects, st.UpstreamDropped, st.Gaps,
		st.Repairs, st.RepairFailures, st.RepairsAbandoned, st.RepairsQueued, st.RepairsInFlight,
		st.BackfilledElems, st.DuplicatesDropped, st.HoldbackOverflows)
	fmt.Fprintf(w,
		"bgpreader: fetch stats: retries=%d resumes=%d permanent-failures=%d "+
			"breaker-transitions=%d breakers-open=%d\n",
		st.FetchRetries, st.FetchResumes, st.FetchFailures,
		st.BreakerTransitions, st.BreakersOpen)
}

func parseWindow(s string) (start, end time.Time, live bool, err error) {
	parts := strings.SplitN(s, ",", 2)
	sec, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return start, end, false, fmt.Errorf("invalid -w start %q", parts[0])
	}
	start = time.Unix(sec, 0).UTC()
	if len(parts) == 1 {
		return start, time.Time{}, true, nil
	}
	esec, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || esec < sec {
		return start, end, false, fmt.Errorf("invalid -w end %q", parts[1])
	}
	return start, time.Unix(esec, 0).UTC(), false, nil
}

func parsePrefix(s string) (core.PrefixFilter, error) {
	p, err := parseNetipPrefix(s)
	if err != nil {
		return core.PrefixFilter{}, fmt.Errorf("invalid -k %q: %w", s, err)
	}
	return core.PrefixFilter{Prefix: p, Match: core.MatchAny}, nil
}
