// Command bgpreader outputs BGPStream records and elems in ASCII — a
// drop-in replacement for the classic bgpdump tool (§4.1) that adds
// multi-file/multi-collector/multi-project reading, live mode, and
// filters.
//
// Filters are given either as one declarative BGPStream v2 filter
// string (-filter) or as the classic per-dimension flags; the two
// styles cannot be mixed.
//
// Examples:
//
//	# all updates about sub-prefixes of 192.0.0.0/8 since a time,
//	# following new data forever (live mode):
//	bgpreader -broker http://localhost:8472 -w 1463011200 \
//	    -filter "type updates and prefix 192.0.0.0/8"
//
//	# the same with classic flags:
//	bgpreader -broker http://localhost:8472 -w 1463011200 -t updates -k 192.0.0.0/8
//
//	# historical window over a local archive, bgpdump -m output:
//	bgpreader -d ./archive -w 1438415400,1438416600 -m
//
//	# follow a push feed (RIS Live-style SSE, e.g. bgplivesrv) with
//	# millisecond latency instead of polling for dumps:
//	bgpreader -ris-live http://localhost:8481/v1/stream -filter "prefix 192.0.0.0/8"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/bgpdump"
	"github.com/bgpstream-go/bgpstream/internal/core"

	bgpstream "github.com/bgpstream-go/bgpstream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bgpreader:", err)
		os.Exit(1)
	}
}

type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// legacyFilterFlags collects the classic per-dimension flags so the
// conflict with -filter can be reported precisely.
type legacyFilterFlags struct {
	types       string
	elemTypes   string
	projects    listFlag
	collectors  listFlag
	prefixes    listFlag
	communities listFlag
	peers       listFlag
}

// used returns the names of every legacy filter flag that was set.
func (l *legacyFilterFlags) used() []string {
	var names []string
	if l.types != "" {
		names = append(names, "-t")
	}
	if l.elemTypes != "" {
		names = append(names, "-e")
	}
	for _, f := range []struct {
		name string
		vals listFlag
	}{{"-p", l.projects}, {"-c", l.collectors}, {"-k", l.prefixes}, {"-y", l.communities}, {"-j", l.peers}} {
		if len(f.vals) > 0 {
			names = append(names, f.name)
		}
	}
	return names
}

// checkFilterConflict rejects mixing -filter with legacy flags: the
// filter string is authoritative and silently merging the two styles
// would hide typos.
func checkFilterConflict(filterStr string, legacy *legacyFilterFlags) error {
	if filterStr == "" {
		return nil
	}
	if used := legacy.used(); len(used) > 0 {
		return fmt.Errorf("-filter cannot be combined with the per-dimension filter flags (%s); express the whole filter in one string",
			strings.Join(used, ", "))
	}
	return nil
}

// filters builds core.Filters from the legacy flags.
func (l *legacyFilterFlags) filters() (core.Filters, error) {
	filters := core.Filters{Projects: l.projects, Collectors: l.collectors}
	if l.types != "" {
		dt := core.DumpType(l.types)
		if !dt.Valid() {
			return filters, fmt.Errorf("invalid -t %q", l.types)
		}
		filters.DumpTypes = []core.DumpType{dt}
	}
	for _, p := range l.prefixes {
		pf, err := parsePrefix(p)
		if err != nil {
			return filters, err
		}
		filters.Prefixes = append(filters.Prefixes, pf)
	}
	for _, c := range l.communities {
		cf, err := bgpstream.ParseCommunityFilter(c)
		if err != nil {
			return filters, err
		}
		filters.Communities = append(filters.Communities, cf)
	}
	for _, p := range l.peers {
		asn, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return filters, fmt.Errorf("invalid -j %q", p)
		}
		filters.PeerASNs = append(filters.PeerASNs, uint32(asn))
	}
	if l.elemTypes != "" {
		for _, tok := range strings.Split(l.elemTypes, ",") {
			switch strings.TrimSpace(strings.ToUpper(tok)) {
			case "A":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemAnnouncement)
			case "W":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemWithdrawal)
			case "R":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemRIB)
			case "S":
				filters.ElemTypes = append(filters.ElemTypes, core.ElemPeerState)
			default:
				return filters, fmt.Errorf("invalid -e token %q", tok)
			}
		}
	}
	return filters, nil
}

func run() error {
	var (
		brokerURL = flag.String("broker", "", "BGPStream Broker URL (default data interface)")
		dir       = flag.String("d", "", "local archive directory data interface")
		csv       = flag.String("csv", "", "CSV dump-index data interface")
		risLive   = flag.String("ris-live", "", "RIS Live-style SSE feed URL (push data interface)")
		risStale  = flag.Duration("ris-live-stale", 0, "reconnect when feed messages lag the clock by this much (0 disables; useless on historical replays)")
		window    = flag.String("w", "", "time window: start[,end] unix seconds; omit end for live mode")
		filterStr = flag.String("filter", "", `BGPStream v2 filter string, e.g. "collector rrc00 and prefix more 10.0.0.0/8 and elemtype announcements" (exclusive with -p/-c/-t/-e/-k/-y/-j)`)
		machine   = flag.Bool("m", false, "bgpdump -m compatible output (elems only)")
		records   = flag.Bool("r", false, "print one line per record instead of per elem")
		verbose   = flag.Bool("v", false, "verbose: print the canonical filter string and source on stderr at startup")
	)
	var legacy legacyFilterFlags
	flag.StringVar(&legacy.types, "t", "", "dump type filter: ribs or updates")
	flag.StringVar(&legacy.elemTypes, "e", "", "elem type filter: any of A,W,R,S (comma separated)")
	flag.Var(&legacy.projects, "p", "project filter (repeatable)")
	flag.Var(&legacy.collectors, "c", "collector filter (repeatable)")
	flag.Var(&legacy.prefixes, "k", "prefix filter, any overlap (repeatable)")
	flag.Var(&legacy.communities, "y", "community filter asn:value with * wildcards (repeatable)")
	flag.Var(&legacy.peers, "j", "peer ASN filter (repeatable)")
	flag.Parse()

	if err := checkFilterConflict(*filterStr, &legacy); err != nil {
		return err
	}
	var filterOpt bgpstream.Option
	if *filterStr != "" {
		filterOpt = bgpstream.WithFilterString(*filterStr)
	} else {
		filters, err := legacy.filters()
		if err != nil {
			return err
		}
		filterOpt = bgpstream.WithFilters(filters)
	}
	opts := []bgpstream.Option{filterOpt}

	if *window != "" {
		start, end, live, err := parseWindow(*window)
		if err != nil {
			return err
		}
		if live {
			opts = append(opts, bgpstream.WithLive(start))
		} else {
			opts = append(opts, bgpstream.WithInterval(start, end))
		}
	}

	// Every transport goes through the unified source registry.
	var srcName string
	var srcOpts bgpstream.SourceOptions
	switch {
	case *risLive != "":
		srcName = "rislive"
		// "log" surfaces connection lifecycle on stderr: without it a
		// bad URL retries forever in silence.
		srcOpts = bgpstream.SourceOptions{"url": *risLive, "stale": risStale.String(), "log": "stderr"}
	case *dir != "":
		srcName, srcOpts = "directory", bgpstream.SourceOptions{"path": *dir}
	case *csv != "":
		srcName, srcOpts = "csvfile", bgpstream.SourceOptions{"path": *csv}
	case *brokerURL != "":
		srcName, srcOpts = "broker", bgpstream.SourceOptions{"url": *brokerURL}
	default:
		return fmt.Errorf("one of -broker, -d, -csv, -ris-live is required")
	}
	opts = append(opts, bgpstream.WithSource(srcName, srcOpts))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	stream, err := bgpstream.Open(ctx, opts...)
	if err != nil {
		return err
	}
	defer stream.Close()

	if *verbose {
		canonical := stream.Filters().String()
		if canonical == "" {
			canonical = "<match everything>"
		}
		fmt.Fprintf(os.Stderr, "bgpreader: source %s, filter: %s\n", srcName, canonical)
	}

	out := newBufferedStdout()
	defer out.Flush()
	// In live modes lines trickle in; flushing per line keeps output
	// latency at the feed's latency instead of the buffer's fill time.
	live := *risLive != "" || stream.Filters().Live
	if *records {
		for rec := range stream.Records() {
			fmt.Fprintln(out, bgpdump.FormatRecord(rec))
			if live {
				out.Flush()
			}
		}
	} else {
		for rec, elem := range stream.Elems() {
			if *machine {
				fmt.Fprintln(out, bgpdump.FormatElem(rec, elem))
			} else {
				fmt.Fprintln(out, bgpdump.FormatElemVerbose(rec, elem))
			}
			if live {
				out.Flush()
			}
		}
	}
	if err := stream.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil // clean EOF or interrupt
}

func parseWindow(s string) (start, end time.Time, live bool, err error) {
	parts := strings.SplitN(s, ",", 2)
	sec, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return start, end, false, fmt.Errorf("invalid -w start %q", parts[0])
	}
	start = time.Unix(sec, 0).UTC()
	if len(parts) == 1 {
		return start, time.Time{}, true, nil
	}
	esec, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || esec < sec {
		return start, end, false, fmt.Errorf("invalid -w end %q", parts[1])
	}
	return start, time.Unix(esec, 0).UTC(), false, nil
}

func parsePrefix(s string) (core.PrefixFilter, error) {
	p, err := parseNetipPrefix(s)
	if err != nil {
		return core.PrefixFilter{}, fmt.Errorf("invalid -k %q: %w", s, err)
	}
	return core.PrefixFilter{Prefix: p, Match: core.MatchAny}, nil
}
