package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/astopo"
	"github.com/bgpstream-go/bgpstream/internal/collector"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/rislive"
)

func TestParseWindow(t *testing.T) {
	start, end, live, err := parseWindow("1463011200")
	if err != nil {
		t.Fatal(err)
	}
	if !live || !end.IsZero() {
		t.Errorf("open window must be live: live=%v end=%v", live, end)
	}
	if start.Unix() != 1463011200 {
		t.Errorf("start = %v", start)
	}

	start, end, live, err = parseWindow("1000,2000")
	if err != nil || live {
		t.Fatalf("closed window: %v live=%v", err, live)
	}
	if start.Unix() != 1000 || end.Unix() != 2000 {
		t.Errorf("window = %v..%v", start, end)
	}

	for _, bad := range []string{"", "abc", "2000,1000", "1,x"} {
		if _, _, _, err := parseWindow(bad); err == nil {
			t.Errorf("parseWindow(%q) accepted", bad)
		}
	}
	_ = time.Time{}
}

func TestParsePrefixFilterFlag(t *testing.T) {
	pf, err := parsePrefix("192.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if pf.Prefix.String() != "192.0.0.0/8" {
		t.Errorf("prefix = %s", pf.Prefix)
	}
	// Bare address accepted as host prefix.
	pf, err = parsePrefix("192.0.2.1")
	if err != nil {
		t.Fatal(err)
	}
	if pf.Prefix.Bits() != 32 {
		t.Errorf("host prefix bits = %d", pf.Prefix.Bits())
	}
	if _, err := parsePrefix("not-a-prefix"); err == nil {
		t.Error("junk accepted")
	}
}

func TestListFlag(t *testing.T) {
	var l listFlag
	l.Set("a")
	l.Set("b")
	if len(l) != 2 || l.String() != "a,b" {
		t.Errorf("listFlag = %v", l)
	}
}

func TestCheckFilterConflict(t *testing.T) {
	// No -filter: legacy flags are fine.
	legacy := &legacyFilterFlags{types: "updates", prefixes: listFlag{"10.0.0.0/8"}}
	if err := checkFilterConflict("", legacy); err != nil {
		t.Errorf("legacy-only flags rejected: %v", err)
	}
	// -filter alone is fine.
	if err := checkFilterConflict("type updates", &legacyFilterFlags{}); err != nil {
		t.Errorf("filter-only rejected: %v", err)
	}
	// Mixing is rejected, naming the offending flags.
	err := checkFilterConflict("type updates", legacy)
	if err == nil {
		t.Fatal("mixing -filter with legacy flags accepted")
	}
	for _, want := range []string{"-t", "-k"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("conflict error %q does not name %s", err, want)
		}
	}
}

func TestLegacyFlagFilters(t *testing.T) {
	legacy := &legacyFilterFlags{
		types:       "updates",
		elemTypes:   "A,W",
		collectors:  listFlag{"rrc00"},
		peers:       listFlag{"3356"},
		communities: listFlag{"*:666"},
		prefixes:    listFlag{"10.0.0.0/8"},
	}
	f, err := legacy.filters()
	if err != nil {
		t.Fatal(err)
	}
	want := "collector rrc00 and type updates and elemtype announcements or withdrawals " +
		"and peer 3356 and prefix 10.0.0.0/8 and community *:666"
	if got := f.String(); got != want {
		t.Errorf("legacy filters canonical form\n got %q\nwant %q", got, want)
	}
	if _, err := (&legacyFilterFlags{types: "bogus"}).filters(); err == nil {
		t.Error("bad -t accepted")
	}
	if _, err := (&legacyFilterFlags{elemTypes: "X"}).filters(); err == nil {
		t.Error("bad -e accepted")
	}
}

// TestRunFlagErrors covers the arg-injectable command surface: flag
// conflicts and -repair wiring errors must be reported before any
// source is opened.
func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{}, &out, &errb); err == nil {
		t.Error("run without a source accepted")
	}
	if err := run([]string{"-nonsense"}, &out, &errb); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-d", "/tmp", "-filter", "type updates", "-t", "ribs"}, &out, &errb); err == nil ||
		!strings.Contains(err.Error(), "-filter cannot be combined") {
		t.Errorf("filter conflict error = %v", err)
	}
	if err := run([]string{"-ris-live", "http://x", "-repair"}, &out, &errb); err == nil ||
		!strings.Contains(err.Error(), "pull source") {
		t.Errorf("-repair without backfill error = %v", err)
	}
	if err := run([]string{"-d", "/tmp", "-repair"}, &out, &errb); err == nil ||
		!strings.Contains(err.Error(), "-ris-live") {
		t.Errorf("-repair without push feed error = %v", err)
	}
	if err := run([]string{"-d", "/tmp", "-repair-cursor", "/tmp/c.json"}, &out, &errb); err == nil ||
		!strings.Contains(err.Error(), "require -repair") {
		t.Errorf("-repair-cursor without -repair error = %v", err)
	}
	if err := run([]string{"-d", "/tmp", "-repair-concurrency", "4"}, &out, &errb); err == nil ||
		!strings.Contains(err.Error(), "require -repair") {
		t.Errorf("-repair-concurrency without -repair error = %v", err)
	}
	if err := run([]string{"-d", "/tmp", "-metrics-addr", "nonsense:port"}, &out, &errb); err == nil {
		t.Error("unbindable -metrics-addr accepted")
	}
}

// TestShowSources prints the registry and exits without needing a
// source flag.
func TestShowSources(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-show-sources"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"directory", "csvfile", "broker", "rislive", "repaired"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-show-sources output missing %q:\n%s", name, out.String())
		}
	}
	if !strings.Contains(out.String(), "pull") || !strings.Contains(out.String(), "push") {
		t.Errorf("-show-sources output missing source kinds:\n%s", out.String())
	}
}

// TestRunRepairedFeed runs the real command path over a repaired push
// feed: a replayed archive behind an SSE server with periodic forced
// disconnects, backfilled from the same archive directory. The -v
// counters must reach stderr and -n must bound the live run.
func TestRunRepairedFeed(t *testing.T) {
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	topo := astopo.Generate(astopo.DefaultParams(7))
	sim, err := collector.NewSimulator(collector.Config{
		Topo:       topo,
		Collectors: collector.DefaultCollectors(topo, 2),
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := archive.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.GenerateArchive(store, start, start.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	feed := &rislive.Server{KeepAlive: 100 * time.Millisecond, BufferSize: 1 << 16}
	hs := httptest.NewServer(feed)
	defer hs.Close()
	go func() {
		// One paced pass over the archive with an early forced
		// disconnect, so the repair path runs inside the -n window;
		// afterwards a synthetic heartbeat trickle keeps feed time
		// advancing, guaranteeing the client can always close a gap
		// and the -n bound is always reachable.
		for feed.Stats().Subscribers == 0 && ctx.Err() == nil {
			time.Sleep(5 * time.Millisecond)
		}
		rs := core.NewStream(ctx, &core.Directory{Dir: dir}, core.Filters{})
		n := 0
		last := start
		for ctx.Err() == nil {
			rec, elem, err := rs.NextElem()
			if err != nil {
				break
			}
			feed.Publish(rec.Project, rec.Collector, elem)
			last = elem.Timestamp
			if n++; n == 100 {
				feed.DisconnectClients()
			}
			time.Sleep(100 * time.Microsecond)
		}
		rs.Close()
		hb := core.Elem{Type: core.ElemAnnouncement, Timestamp: last}
		for ctx.Err() == nil {
			hb.Timestamp = hb.Timestamp.Add(time.Second)
			feed.Publish("ris", "rrc00", &hb)
			time.Sleep(5 * time.Millisecond)
		}
	}()

	cursor := filepath.Join(t.TempDir(), "cursor.json")
	var out, errb bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-ris-live", hs.URL, "-repair", "-d", dir,
			"-repair-cursor", cursor, "-repair-concurrency", "2",
			"-metrics-addr", "127.0.0.1:0",
			"-m", "-v", "-n", "500",
		}, &out, &errb)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v (stderr: %s)", err, errb.String())
		}
	case <-time.After(80 * time.Second):
		t.Fatalf("run did not reach the -n bound (stdout %d bytes, stderr: %s)",
			out.Len(), errb.String())
	}
	if lines := strings.Count(out.String(), "\n"); lines != 500 {
		t.Fatalf("printed %d lines, want 500 (-n bound)", lines)
	}
	if !strings.Contains(errb.String(), "bgpreader: source rislive+directory") {
		t.Errorf("verbose header missing composite source name: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "source stats: live=") {
		t.Errorf("completeness counters missing from -v output: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "repairs-abandoned=") {
		t.Errorf("repair pipeline counters missing from -v output: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "bgpreader: pipeline: ") ||
		!strings.Contains(errb.String(), "elems=") {
		t.Errorf("registry pipeline totals missing from -v output: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "bgpreader: ops plane on http://127.0.0.1:") {
		t.Errorf("-metrics-addr bind line missing from -v output: %s", errb.String())
	}
	cb, err := os.ReadFile(cursor)
	if err != nil {
		t.Fatalf("-repair-cursor wrote no cursor: %v", err)
	}
	if !strings.Contains(string(cb), `"watermark"`) {
		t.Errorf("cursor file missing watermark: %s", cb)
	}
}
