package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseWindow(t *testing.T) {
	start, end, live, err := parseWindow("1463011200")
	if err != nil {
		t.Fatal(err)
	}
	if !live || !end.IsZero() {
		t.Errorf("open window must be live: live=%v end=%v", live, end)
	}
	if start.Unix() != 1463011200 {
		t.Errorf("start = %v", start)
	}

	start, end, live, err = parseWindow("1000,2000")
	if err != nil || live {
		t.Fatalf("closed window: %v live=%v", err, live)
	}
	if start.Unix() != 1000 || end.Unix() != 2000 {
		t.Errorf("window = %v..%v", start, end)
	}

	for _, bad := range []string{"", "abc", "2000,1000", "1,x"} {
		if _, _, _, err := parseWindow(bad); err == nil {
			t.Errorf("parseWindow(%q) accepted", bad)
		}
	}
	_ = time.Time{}
}

func TestParsePrefixFilterFlag(t *testing.T) {
	pf, err := parsePrefix("192.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if pf.Prefix.String() != "192.0.0.0/8" {
		t.Errorf("prefix = %s", pf.Prefix)
	}
	// Bare address accepted as host prefix.
	pf, err = parsePrefix("192.0.2.1")
	if err != nil {
		t.Fatal(err)
	}
	if pf.Prefix.Bits() != 32 {
		t.Errorf("host prefix bits = %d", pf.Prefix.Bits())
	}
	if _, err := parsePrefix("not-a-prefix"); err == nil {
		t.Error("junk accepted")
	}
}

func TestListFlag(t *testing.T) {
	var l listFlag
	l.Set("a")
	l.Set("b")
	if len(l) != 2 || l.String() != "a,b" {
		t.Errorf("listFlag = %v", l)
	}
}

func TestCheckFilterConflict(t *testing.T) {
	// No -filter: legacy flags are fine.
	legacy := &legacyFilterFlags{types: "updates", prefixes: listFlag{"10.0.0.0/8"}}
	if err := checkFilterConflict("", legacy); err != nil {
		t.Errorf("legacy-only flags rejected: %v", err)
	}
	// -filter alone is fine.
	if err := checkFilterConflict("type updates", &legacyFilterFlags{}); err != nil {
		t.Errorf("filter-only rejected: %v", err)
	}
	// Mixing is rejected, naming the offending flags.
	err := checkFilterConflict("type updates", legacy)
	if err == nil {
		t.Fatal("mixing -filter with legacy flags accepted")
	}
	for _, want := range []string{"-t", "-k"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("conflict error %q does not name %s", err, want)
		}
	}
}

func TestLegacyFlagFilters(t *testing.T) {
	legacy := &legacyFilterFlags{
		types:       "updates",
		elemTypes:   "A,W",
		collectors:  listFlag{"rrc00"},
		peers:       listFlag{"3356"},
		communities: listFlag{"*:666"},
		prefixes:    listFlag{"10.0.0.0/8"},
	}
	f, err := legacy.filters()
	if err != nil {
		t.Fatal(err)
	}
	want := "collector rrc00 and type updates and elemtype announcements or withdrawals " +
		"and peer 3356 and prefix 10.0.0.0/8 and community *:666"
	if got := f.String(); got != want {
		t.Errorf("legacy filters canonical form\n got %q\nwant %q", got, want)
	}
	if _, err := (&legacyFilterFlags{types: "bogus"}).filters(); err == nil {
		t.Error("bad -t accepted")
	}
	if _, err := (&legacyFilterFlags{elemTypes: "X"}).filters(); err == nil {
		t.Error("bad -e accepted")
	}
}
