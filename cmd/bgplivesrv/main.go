// Command bgplivesrv serves a RIS Live-style push feed: it replays
// BGP data from any pull source — a local archive directory, a CSV
// dump index, or a BGPStream Broker — as per-elem JSON messages over
// Server-Sent Events, with per-client subscription filters, keepalive
// pings, and slow-client drop accounting. It turns the pull-based
// archives of §3.2 into the millisecond-latency push feeds that
// bgpreader's -ris-live flag (and any rislive.Client) consumes.
//
// Examples:
//
//	# replay a collectorsim archive at 60x real time, forever:
//	bgplivesrv -listen :8481 -d ./archive -pace 60 -loop
//
//	# flood a one-shot replay as fast as it decodes:
//	bgplivesrv -listen :8481 -d ./archive
//
// Endpoints: /v1/stream (live feed — SSE, or WebSocket when the
// request carries an upgrade; see rislive.ParseSubscription for the
// filter parameters), /v1/ws (same feed, conventional WebSocket
// path), /v1/stats (JSON counters), /metrics (Prometheus text
// exposition of the whole pipeline), /healthz (JSON liveness),
// /sources (source registry plus per-stream health), and — with
// -pprof — /debug/pprof/.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/rislive"

	bgpstream "github.com/bgpstream-go/bgpstream"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "bgplivesrv:", err)
		os.Exit(1)
	}
}

// run builds and serves the feed; onListen (used by tests) receives
// the bound address before serving starts.
func run(ctx context.Context, args []string, onListen func(net.Addr)) error {
	fs := flag.NewFlagSet("bgplivesrv", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", ":8481", "HTTP listen address")
		dir       = fs.String("d", "", "local archive directory to replay")
		csv       = fs.String("csv", "", "CSV dump-index to replay")
		brokerURL = fs.String("broker", "", "BGPStream Broker URL to replay")
		loop      = fs.Bool("loop", false, "restart the replay when the source is exhausted")
		pace      = fs.Float64("pace", 0, "replay speed: 1 = real time, 60 = hour/minute, 0 = flat out")
		maxGap    = fs.Duration("max-gap", 5*time.Second, "cap on any single pacing sleep")
		keepalive = fs.Duration("keepalive", 15*time.Second, "feed ping interval (SSE and WebSocket)")
		buffer    = fs.Int("buffer", 1024, "per-client message buffer (drop-newest beyond)")
		shards    = fs.Int("shards", 0, "fan-out shards (goroutines); 0 = default (8)")
		shardQ    = fs.Int("shard-queue", 0, "per-shard queued-elem bound; 0 = default (8192)")
		pprofFlag = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil // -h: usage already printed, exit clean
		}
		return err
	}

	// The replayed stream comes from the unified source registry, so
	// any registered pull transport can back the feed.
	var srcName string
	var srcOpts bgpstream.SourceOptions
	switch {
	case *dir != "":
		srcName, srcOpts = "directory", bgpstream.SourceOptions{"path": *dir}
	case *csv != "":
		srcName, srcOpts = "csvfile", bgpstream.SourceOptions{"path": *csv}
	case *brokerURL != "":
		srcName, srcOpts = "broker", bgpstream.SourceOptions{"url": *brokerURL}
	default:
		return fmt.Errorf("one of -d, -csv, -broker is required")
	}
	newStream := func() (*bgpstream.Stream, error) {
		return bgpstream.Open(ctx, bgpstream.WithSource(srcName, srcOpts))
	}
	if s, err := newStream(); err != nil {
		return err // fail fast on a bad source before binding
	} else {
		s.Close()
	}

	feed := &rislive.Server{
		KeepAlive:  *keepalive,
		BufferSize: *buffer,
		Shards:     *shards,
		ShardQueue: *shardQ,
		Logf:       log.Printf,
	}
	defer feed.Close() // drain and stop the fan-out shard goroutines
	mux := http.NewServeMux()
	mux.Handle("/v1/stream", feed)
	mux.Handle("/v1/ws", feed)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(feed.Stats())
	})
	// Ops plane beside the data plane: Prometheus exposition of the
	// whole pipeline (prefetch, merge, fan-out), liveness, and the
	// source registry plus per-stream health.
	ops := bgpstream.MetricsHandler(*pprofFlag)
	mux.Handle("/metrics", ops)
	mux.Handle("/healthz", ops)
	mux.Handle("/sources", ops)
	if *pprofFlag {
		mux.Handle("/debug/pprof/", ops)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	log.Printf("bgplivesrv: serving live feed on %s/v1/stream (SSE or WS upgrade) and /v1/ws (pace %gx, loop %v)",
		ln.Addr(), *pace, *loop)

	go func() {
		opts := rislive.ReplayOptions{Pace: *pace, MaxGap: *maxGap}
		for ctx.Err() == nil {
			s, err := newStream()
			if err != nil {
				log.Printf("bgplivesrv: %v", err)
				return
			}
			n, err := rislive.Replay(ctx, s, feed, opts)
			s.Close()
			if err != nil && ctx.Err() == nil {
				log.Printf("bgplivesrv: replay ended after %d elems: %v", n, err)
			} else {
				log.Printf("bgplivesrv: replayed %d elems", n)
			}
			if !*loop || ctx.Err() != nil {
				return
			}
		}
	}()

	srv := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
