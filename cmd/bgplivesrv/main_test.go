package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/astopo"
	"github.com/bgpstream-go/bgpstream/internal/collector"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/rislive"
)

// httpGetBody fetches a URL and returns the body, failing the test on
// any transport or status error.
func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// expoValue extracts the sample value of an unlabeled metric from a
// Prometheus text exposition.
func expoValue(expo, name string) (float64, bool) {
	for _, line := range strings.Split(expo, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-nonsense"}, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(ctx, []string{}, nil); err == nil {
		t.Fatal("run without a source must fail")
	}
}

// TestRunEndToEnd serves a simulated archive through the command path
// and consumes the feed with a rislive client via core.NewLiveStream.
func TestRunEndToEnd(t *testing.T) {
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	topo := astopo.Generate(astopo.DefaultParams(9))
	sim, err := collector.NewSimulator(collector.Config{
		Topo:              topo,
		Collectors:        collector.DefaultCollectors(topo, 2),
		ChurnFlapsPerHour: 30,
		Seed:              9,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := archive.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.GenerateArchive(store, start, start.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-listen", "127.0.0.1:0",
			"-d", dir,
			"-loop",
			"-keepalive", "100ms",
		}, func(a net.Addr) { addrc <- a })
	}()
	var addr net.Addr
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	base := "http://" + addr.String()

	client := rislive.NewClient(base+"/v1/stream", rislive.Subscription{
		Projects: []string{"ris"},
	})
	client.Backoff = 20 * time.Millisecond
	s := core.NewLiveStream(ctx, client, core.Filters{})
	defer s.Close()
	for i := 0; i < 50; i++ {
		rec, elem, err := s.NextElem()
		if err != nil {
			t.Fatalf("after %d elems: %v", i, err)
		}
		if rec.Project != "ris" {
			t.Fatalf("subscription filter leak: project %q", rec.Project)
		}
		if !rec.Time().Equal(elem.Timestamp) {
			t.Fatalf("record/elem time mismatch: %v vs %v", rec.Time(), elem.Timestamp)
		}
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats rislive.ServerStats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Subscribers != 1 || stats.Published < 50 {
		t.Fatalf("stats = %+v", stats)
	}

	// The ops plane must reflect the session that just ran: decode and
	// publish counters nonzero, every pipeline layer's family present.
	expo := httpGetBody(t, base+"/metrics")
	for _, metric := range []string{
		"bgpstream_prefetch_records_decoded_total",
		"bgpstream_rislive_published_total",
	} {
		v, ok := expoValue(expo, metric)
		if !ok {
			t.Fatalf("/metrics missing %s:\n%s", metric, expo)
		}
		if v <= 0 {
			t.Fatalf("%s = %v, want > 0", metric, v)
		}
	}
	for _, family := range []string{
		"bgpstream_merge_heap_size",
		"bgpstream_gaprepair_gaps_total",
		"bgpstream_stream_elems_total",
		"bgpstream_rislive_subscribers",
	} {
		if !strings.Contains(expo, family) {
			t.Fatalf("/metrics missing family %s", family)
		}
	}

	var health map[string]any
	if err := json.Unmarshal([]byte(httpGetBody(t, base+"/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	var sources map[string]json.RawMessage
	if err := json.Unmarshal([]byte(httpGetBody(t, base+"/sources")), &sources); err != nil {
		t.Fatal(err)
	}
	if _, ok := sources["registered"]; !ok {
		t.Fatalf("/sources missing registered: %v", sources)
	}
	if _, ok := sources["active"]; !ok {
		t.Fatalf("/sources missing active: %v", sources)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil && err != context.Canceled {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop on context cancel")
	}
}
