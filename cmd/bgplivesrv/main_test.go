package main

import (
	"context"
	"encoding/json"

	"net"
	"net/http"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/astopo"
	"github.com/bgpstream-go/bgpstream/internal/collector"
	"github.com/bgpstream-go/bgpstream/internal/core"
	"github.com/bgpstream-go/bgpstream/internal/rislive"
)

func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-nonsense"}, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(ctx, []string{}, nil); err == nil {
		t.Fatal("run without a source must fail")
	}
}

// TestRunEndToEnd serves a simulated archive through the command path
// and consumes the feed with a rislive client via core.NewLiveStream.
func TestRunEndToEnd(t *testing.T) {
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	topo := astopo.Generate(astopo.DefaultParams(9))
	sim, err := collector.NewSimulator(collector.Config{
		Topo:              topo,
		Collectors:        collector.DefaultCollectors(topo, 2),
		ChurnFlapsPerHour: 30,
		Seed:              9,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := archive.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.GenerateArchive(store, start, start.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-listen", "127.0.0.1:0",
			"-d", dir,
			"-loop",
			"-keepalive", "100ms",
		}, func(a net.Addr) { addrc <- a })
	}()
	var addr net.Addr
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	base := "http://" + addr.String()

	client := rislive.NewClient(base+"/v1/stream", rislive.Subscription{
		Projects: []string{"ris"},
	})
	client.Backoff = 20 * time.Millisecond
	s := core.NewLiveStream(ctx, client, core.Filters{})
	defer s.Close()
	for i := 0; i < 50; i++ {
		rec, elem, err := s.NextElem()
		if err != nil {
			t.Fatalf("after %d elems: %v", i, err)
		}
		if rec.Project != "ris" {
			t.Fatalf("subscription filter leak: project %q", rec.Project)
		}
		if !rec.Time().Equal(elem.Timestamp) {
			t.Fatalf("record/elem time mismatch: %v vs %v", rec.Time(), elem.Timestamp)
		}
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats rislive.ServerStats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Subscribers != 1 || stats.Published < 50 {
		t.Fatalf("stats = %+v", stats)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil && err != context.Canceled {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop on context cancel")
	}
}
