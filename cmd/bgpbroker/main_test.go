package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/archive"
	"github.com/bgpstream-go/bgpstream/internal/astopo"
	"github.com/bgpstream-go/bgpstream/internal/collector"
)

func TestProviderFlag(t *testing.T) {
	var p providerFlag
	if err := p.Set("ris=http://a/,http://b/"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("routeviews=http://c/"); err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || p[0].Project != "ris" || len(p[0].Mirrors) != 2 || p[0].Mirrors[1] != "http://b/" {
		t.Fatalf("providerFlag = %+v", p)
	}
	if err := p.Set("missing-equals"); err == nil {
		t.Fatal("bad provider spec accepted")
	}
	if p.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{}, nil); err == nil {
		t.Fatal("run without providers must fail")
	}
	if err := run([]string{"-provider", "bad"}, nil); err == nil {
		t.Fatal("run with bad provider must fail")
	}
	if err := run([]string{"-nonsense"}, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunEndToEnd runs the real command path — flags, index, scrape
// loop, HTTP service — against a simulated archive and checks a
// client-visible /data query.
func TestRunEndToEnd(t *testing.T) {
	start := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	topo := astopo.Generate(astopo.DefaultParams(5))
	sim, err := collector.NewSimulator(collector.Config{
		Topo:       topo,
		Collectors: collector.DefaultCollectors(topo, 2),
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := archive.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.GenerateArchive(store, start, start.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	archSrv := httptest.NewServer(&archive.Server{Store: store})
	defer archSrv.Close()

	addrc := make(chan net.Addr, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-listen", "127.0.0.1:0",
			"-scrape", "50ms",
			"-provider", "ris=" + archSrv.URL + "/ris/",
			"-provider", "routeviews=" + archSrv.URL + "/routeviews/",
		}, func(a net.Addr) <-chan struct{} {
			addrc <- a
			return stop
		})
	}()

	var addr net.Addr
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("broker did not start")
	}
	base := "http://" + addr.String()

	// Wait for the scrape loop to index the archive, then query it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/data?project=ris&type=updates&intervalStart=%d&intervalEnd=%d",
			base, start.Unix(), start.Add(time.Hour).Unix()))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			DumpFiles []struct {
				Project   string `json:"project"`
				Collector string `json:"collector"`
				URL       string `json:"url"`
			} `json:"dumpFiles"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err == nil && len(body.DumpFiles) > 0 {
			for _, f := range body.DumpFiles {
				if f.Project != "ris" {
					t.Fatalf("project filter leak: %+v", f)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("broker never indexed the archive")
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err := http.Get(base + "/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/health = %d", resp.StatusCode)
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop")
	}
}
