// Command bgpbroker runs the BGPStream Broker web service (§3.2): it
// continuously scrapes data-provider archives, indexes dump-file
// meta-data, and answers windowed HTTP queries from libBGPStream
// clients.
//
// Example:
//
//	bgpbroker -listen :8472 \
//	    -provider ris=http://archive.example/ris/ \
//	    -provider routeviews=http://archive.example/routeviews/,http://mirror.example/routeviews/ \
//	    -index /var/lib/bgpbroker/index.jsonl -scrape 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/broker"
)

type providerFlag []broker.DataProvider

func (p *providerFlag) String() string { return fmt.Sprintf("%v", *p) }

func (p *providerFlag) Set(v string) error {
	name, urls, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("provider must be project=url[,mirror...]: %q", v)
	}
	mirrors := strings.Split(urls, ",")
	for i := range mirrors {
		mirrors[i] = strings.TrimSpace(mirrors[i])
	}
	*p = append(*p, broker.DataProvider{Project: name, Mirrors: mirrors})
	return nil
}

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "bgpbroker:", err)
		os.Exit(1)
	}
}

// run parses flags and serves the broker until the listener fails;
// onListen (used by tests) receives the bound address, and its return
// value — when non-nil — is closed to stop the server.
func run(args []string, onListen func(net.Addr) <-chan struct{}) error {
	fs := flag.NewFlagSet("bgpbroker", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", ":8472", "HTTP listen address")
		indexPath = fs.String("index", "", "persist meta-data to this JSON-line log")
		interval  = fs.Duration("scrape", time.Minute, "archive scrape interval")
	)
	var providers providerFlag
	fs.Var(&providers, "provider", "project=url[,mirror...] (repeatable)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil // -h: usage already printed, exit clean
		}
		return err
	}

	if len(providers) == 0 {
		return fmt.Errorf("at least one -provider is required")
	}
	var (
		index *broker.Index
		err   error
	)
	if *indexPath != "" {
		index, err = broker.OpenIndex(*indexPath)
		if err != nil {
			return err
		}
		defer index.Close()
	} else {
		index = broker.NewIndex()
	}
	srv := &broker.Server{
		Index:          index,
		Providers:      providers,
		ScrapeInterval: *interval,
	}
	srv.Start()
	defer srv.Stop()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("bgpbroker: serving on %s (%d providers, %d files indexed)",
		ln.Addr(), len(providers), index.Len())
	hs := &http.Server{Handler: srv}
	if onListen != nil {
		if stop := onListen(ln.Addr()); stop != nil {
			go func() {
				<-stop
				hs.Close()
			}()
		}
	}
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
