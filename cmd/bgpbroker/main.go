// Command bgpbroker runs the BGPStream Broker web service (§3.2): it
// continuously scrapes data-provider archives, indexes dump-file
// meta-data, and answers windowed HTTP queries from libBGPStream
// clients.
//
// Example:
//
//	bgpbroker -listen :8472 \
//	    -provider ris=http://archive.example/ris/ \
//	    -provider routeviews=http://archive.example/routeviews/,http://mirror.example/routeviews/ \
//	    -index /var/lib/bgpbroker/index.jsonl -scrape 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/bgpstream-go/bgpstream/internal/broker"
)

type providerFlag []broker.DataProvider

func (p *providerFlag) String() string { return fmt.Sprintf("%v", *p) }

func (p *providerFlag) Set(v string) error {
	name, urls, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("provider must be project=url[,mirror...]: %q", v)
	}
	mirrors := strings.Split(urls, ",")
	for i := range mirrors {
		mirrors[i] = strings.TrimSpace(mirrors[i])
	}
	*p = append(*p, broker.DataProvider{Project: name, Mirrors: mirrors})
	return nil
}

func main() {
	var (
		listen    = flag.String("listen", ":8472", "HTTP listen address")
		indexPath = flag.String("index", "", "persist meta-data to this JSON-line log")
		interval  = flag.Duration("scrape", time.Minute, "archive scrape interval")
	)
	var providers providerFlag
	flag.Var(&providers, "provider", "project=url[,mirror...] (repeatable)")
	flag.Parse()

	if len(providers) == 0 {
		fmt.Fprintln(os.Stderr, "bgpbroker: at least one -provider is required")
		os.Exit(2)
	}
	var (
		index *broker.Index
		err   error
	)
	if *indexPath != "" {
		index, err = broker.OpenIndex(*indexPath)
		if err != nil {
			log.Fatalf("bgpbroker: %v", err)
		}
		defer index.Close()
	} else {
		index = broker.NewIndex()
	}
	srv := &broker.Server{
		Index:          index,
		Providers:      providers,
		ScrapeInterval: *interval,
	}
	srv.Start()
	defer srv.Stop()
	log.Printf("bgpbroker: serving on %s (%d providers, %d files indexed)",
		*listen, len(providers), index.Len())
	if err := http.ListenAndServe(*listen, srv); err != nil {
		log.Fatalf("bgpbroker: %v", err)
	}
}
